//! Target registry and the shared target renderer.
//!
//! Both front ends — the `repro` CLI and the `membw serve` daemon —
//! answer the same question: "render table/figure X at scale Y". This
//! module is the single implementation behind both. The CLI prints
//! [`RenderedTarget::stdout`] verbatim and archives the JSON artifacts
//! under `--json DIR`; the daemon returns the same string over the
//! wire and keys its crash-safe result store by `(target, scale,
//! sweep)`. Because both paths call [`render_target`], the serve soak
//! test's "every response is byte-identical to the CLI run" criterion
//! is checked against literally the same bytes.
//!
//! The registry constants ([`TARGETS`], [`ALL_TARGETS`],
//! [`validate_target`], [`parse_scale`]) migrated here from the bench
//! crate so the serve crate can validate requests without depending on
//! the binary's crate (`membw-bench` re-exports them for
//! compatibility).

use crate::analytic::pins::{dataset, Series};
use crate::error::MembwError;
use crate::plot::AsciiPlot;
use crate::report::Table;
use crate::sim::{Experiment, MachineSpec};
use crate::sweep::SweepMode;
use crate::workloads::{Scale, Suite};
use crate::{
    run_ablation, run_dram, run_epin, run_extrapolation, run_fig1, run_fig2, run_fig3, run_fig4,
    run_interference, run_speculation, run_swprefetch, run_table1, run_table2, run_table3,
    run_table7, run_table8, run_table9,
};

/// Parse a `--scale` / request scale value.
///
/// # Errors
///
/// Returns the offending string if it is not `test`, `small`, or
/// `full`.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!(
            "unknown scale '{other}' (expected test|small|full)"
        )),
    }
}

/// All targets `repro` understands, including the `all` meta-target.
pub const TARGETS: [&str; 20] = [
    "fig1",
    "table1",
    "fig2",
    "table2",
    "table3",
    "params",
    "fig3",
    "table6",
    "table7",
    "table8",
    "fig4",
    "table9",
    "epin",
    "extrapolate",
    "ablation",
    "interference",
    "dram",
    "speculation",
    "swprefetch",
    "dump",
];

/// The leaf targets the `all` meta-target expands to, in `repro`'s
/// output order (fig3 runs last: it is by far the slowest). This is the
/// single source of truth — the `repro` binary imports it rather than
/// maintaining its own copy, and a test pins it against [`TARGETS`].
pub const ALL_TARGETS: [&str; 18] = [
    "fig1",
    "table1",
    "fig2",
    "table2",
    "table3",
    "params",
    "table7",
    "table8",
    "fig4",
    "table9",
    "epin",
    "extrapolate",
    "ablation",
    "interference",
    "dram",
    "speculation",
    "swprefetch",
    "fig3",
];

/// Levenshtein edit distance (iterative two-row form) — small inputs
/// only, used for the "did you mean" hint.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Validate a target name up front.
///
/// # Errors
///
/// For an unknown target, returns an error message that includes a
/// "did you mean" suggestion when some known target is within edit
/// distance 3.
pub fn validate_target(target: &str) -> Result<(), String> {
    if target == "all" || TARGETS.contains(&target) {
        return Ok(());
    }
    let best = TARGETS
        .iter()
        .map(|t| (edit_distance(target, t), *t))
        .min()
        .filter(|(d, _)| *d <= 3);
    match best {
        Some((_, suggestion)) => Err(format!(
            "unknown target '{target}' (did you mean '{suggestion}'?)"
        )),
        None => Err(format!(
            "unknown target '{target}' (run with --help for the list)"
        )),
    }
}

/// Whether [`render_target`] can serve this target: every known leaf
/// except `dump` (a filesystem utility, not a table) and the `all`
/// meta-target (front ends expand it to [`ALL_TARGETS`] themselves).
pub fn renderable(target: &str) -> bool {
    target != "dump" && target != "all" && TARGETS.contains(&target)
}

/// One JSON artifact a target produces alongside its stdout (the CLI
/// archives these under `--json DIR` as `<name>.json`).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Artifact stem (`table7`, `fig3_spec92`, …).
    pub name: String,
    /// Pretty-printed JSON body.
    pub json: String,
}

/// The complete observable output of one target run.
#[derive(Debug, Clone)]
pub struct RenderedTarget {
    /// Exactly the bytes the `repro` CLI prints on stdout for this
    /// target — the byte-identity contract both front ends share.
    pub stdout: String,
    /// JSON archives, in the order the CLI writes them.
    pub artifacts: Vec<Artifact>,
}

impl RenderedTarget {
    fn block(&mut self, text: &str) {
        self.stdout.push_str(text);
        self.stdout.push('\n');
    }

    fn emit(&mut self, name: &str, table: &Table, json: Option<String>) {
        self.block(&table.render());
        if let Some(json) = json {
            self.artifacts.push(Artifact {
                name: name.to_string(),
                json,
            });
        }
    }
}

fn params_table(suite: &str, spec_for: impl Fn(Experiment) -> MachineSpec) -> Table {
    let mut t = Table::new(
        format!("Tables 4-5: machine parameters ({suite})"),
        [
            "Exp", "Core", "RUU", "LSQ", "Bpred", "MHz", "L1", "L1 blk", "L2", "L2 blk", "L1 kind",
            "Prefetch",
        ]
        .map(String::from)
        .to_vec(),
    );
    for e in Experiment::ALL {
        let m = spec_for(e);
        t.row(vec![
            e.label().to_string(),
            format!("{:?}", m.core),
            m.ruu_slots.to_string(),
            m.lsq_entries.to_string(),
            m.bpred_entries.to_string(),
            m.cpu_mhz.to_string(),
            format!("{}KB", m.mem.l1_bytes / 1024),
            format!("{}B", m.mem.l1_block),
            format!("{}KB", m.mem.l2_bytes / 1024),
            format!("{}B", m.mem.l2_block),
            if m.mem.blocking {
                "blocking"
            } else {
                "lockup-free"
            }
            .to_string(),
            if m.mem.tagged_prefetch { "tagged" } else { "-" }.to_string(),
        ]);
    }
    t
}

/// Run one renderable leaf target and capture its complete output.
///
/// The returned [`RenderedTarget::stdout`] is byte-for-byte what the
/// `repro` CLI prints for the same `(target, scale, sweep)`; the
/// auditor, governor, checkpoint store, and sweep engine all apply
/// through their ambient configuration exactly as in a CLI run.
///
/// # Errors
///
/// Propagates the target's own failure ([`MembwError`]): failed jobs,
/// strict-audit invariant violations, trace I/O.
///
/// # Panics
///
/// Panics if `target` is not [`renderable`] — callers validate first
/// (the CLI via [`validate_target`] plus its own `dump` handling, the
/// daemon by rejecting non-renderable requests before dispatch).
pub fn render_target(
    target: &str,
    scale: Scale,
    sweep: SweepMode,
) -> Result<RenderedTarget, MembwError> {
    let mut out = RenderedTarget {
        stdout: String::new(),
        artifacts: Vec::new(),
    };
    match target {
        "fig1" => {
            let (res, table) = run_fig1::run()?;
            out.emit("fig1", &table, serde_json::to_string_pretty(&res).ok());
            for (label, series) in [
                ("Figure 1a: pins vs year (log y)", Series::Pins),
                ("Figure 1b: MIPS/pin vs year (log y)", Series::MipsPerPin),
                (
                    "Figure 1c: MIPS/(pin MB/s) vs year (log y)",
                    Series::MipsPerBandwidth,
                ),
            ] {
                let pts: Vec<(f64, f64)> = dataset()
                    .iter()
                    .map(|pr| (f64::from(pr.year), series.value(pr)))
                    .collect();
                let plot = AsciiPlot::new(label, 60, 14)
                    .log_y()
                    .series('o', "processors", pts);
                out.block(&plot.render());
            }
        }
        "table1" => {
            let (_, table) = run_table1::run()?;
            out.emit("table1", &table, None);
        }
        "table2" => {
            let (res, table) = run_table2::run(1024)?;
            out.emit("table2", &table, serde_json::to_string_pretty(&res).ok());
        }
        "table3" => {
            let (res, table) = run_table3::run(scale)?;
            out.emit("table3", &table, serde_json::to_string_pretty(&res).ok());
        }
        "params" => {
            out.block(&params_table("SPEC92", MachineSpec::spec92).render());
            out.block(&params_table("SPEC95", MachineSpec::spec95).render());
        }
        "fig2" => {
            let (res, table, plots) = run_fig2::run(12)?;
            out.emit("fig2", &table, serde_json::to_string_pretty(&res).ok());
            for p in plots {
                out.block(&p.render());
            }
        }
        "fig3" | "table6" => {
            for (suite, label) in [(Suite::Spec92, "SPEC92"), (Suite::Spec95, "SPEC95")] {
                let res = run_fig3::run_suite(suite, scale, &Experiment::ALL)?;
                if target == "fig3" {
                    let t = run_fig3::render(&res, &format!("Figure 3 ({label} benchmarks)"));
                    out.emit(
                        &format!("fig3_{}", label.to_lowercase()),
                        &t,
                        serde_json::to_string_pretty(&res).ok(),
                    );
                }
                let t6 = run_fig3::render_table6(&res);
                out.emit(&format!("table6_{}", label.to_lowercase()), &t6, None);
            }
        }
        "table7" => {
            let (res, table) = run_table7::run_with(scale, sweep)?;
            out.emit("table7", &table, serde_json::to_string_pretty(&res).ok());
        }
        "table8" => {
            let (res, table) = run_table8::run_with(scale, sweep)?;
            out.emit("table8", &table, serde_json::to_string_pretty(&res).ok());
        }
        "fig4" => {
            let (panels, tables) = run_fig4::run_with(scale, sweep)?;
            for t in &tables {
                out.block(&t.render());
            }
            for p in &panels {
                let mut plot = AsciiPlot::new(
                    format!(
                        "Figure 4 ({}): traffic (bytes) vs capacity, log-log",
                        p.name
                    ),
                    64,
                    16,
                )
                .log_log();
                let markers = ['1', '2', '3', '4', '5', '6', 'A', 'V'];
                for (c, m) in p.curves.iter().zip(markers) {
                    let pts: Vec<(f64, f64)> = c
                        .points
                        .iter()
                        .map(|&(s, t)| (s as f64, t as f64))
                        .collect();
                    plot = plot.series(m, c.label.clone(), pts);
                }
                out.block(&plot.render());
            }
            if let Ok(body) = serde_json::to_string_pretty(&panels) {
                out.artifacts.push(Artifact {
                    name: "fig4".to_string(),
                    json: body,
                });
            }
        }
        "table9" => {
            let (res, tables) = run_table9::run_with(scale, sweep)?;
            for t in &tables {
                out.block(&t.render());
            }
            if let Ok(body) = serde_json::to_string_pretty(&res) {
                out.artifacts.push(Artifact {
                    name: "table9".to_string(),
                    json: body,
                });
            }
        }
        "ablation" => {
            let (res, table) = run_ablation::run(scale, 16 * 1024)?;
            out.emit("ablation", &table, serde_json::to_string_pretty(&res).ok());
        }
        "epin" => {
            let (res, table) = run_epin::run(scale)?;
            out.emit("epin", &table, serde_json::to_string_pretty(&res).ok());
        }
        "swprefetch" => {
            let (res, table) = run_swprefetch::run()?;
            out.emit(
                "swprefetch",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "speculation" => {
            let (res, table) = run_speculation::run()?;
            out.emit(
                "speculation",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "dram" => {
            let (res, table) = run_dram::run()?;
            out.emit("dram", &table, serde_json::to_string_pretty(&res).ok());
        }
        "interference" => {
            let (res, table) = run_interference::run(16 * 1024, 200)?;
            out.emit(
                "interference",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "extrapolate" => {
            let (res, table) = run_extrapolation::run()?;
            out.emit(
                "extrapolate",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        other => unreachable!("target '{other}' is not renderable; callers validate first"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scales() {
        assert_eq!(parse_scale("test").unwrap(), Scale::Test);
        assert_eq!(parse_scale("small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("full").unwrap(), Scale::Full);
        assert!(parse_scale("huge").is_err());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("table8", "tabel8"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn unknown_targets_get_suggestions() {
        assert!(validate_target("table8").is_ok());
        assert!(validate_target("all").is_ok());
        let e = validate_target("tabel8").unwrap_err();
        assert!(e.contains("did you mean 'table8'"), "{e}");
        let e = validate_target("figg4").unwrap_err();
        assert!(e.contains("did you mean 'fig4'"), "{e}");
        // Nothing close: no misleading suggestion.
        let e = validate_target("zzzzzzzzzzzz").unwrap_err();
        assert!(!e.contains("did you mean"), "{e}");
    }

    #[test]
    fn target_list_covers_the_all_expansion() {
        // `all` must only expand to known leaf targets.
        for t in TARGETS {
            assert!(validate_target(t).is_ok(), "{t}");
        }
    }

    #[test]
    fn all_expansion_and_target_list_are_consistent() {
        // Every `all` leaf is a known target, no leaf repeats, and the
        // only targets outside the expansion are the non-default ones
        // (`table6` is folded into `fig3`; `dump` is a utility).
        for t in ALL_TARGETS {
            assert!(TARGETS.contains(&t), "'{t}' missing from TARGETS");
        }
        for (i, t) in ALL_TARGETS.iter().enumerate() {
            assert!(!ALL_TARGETS[..i].contains(t), "'{t}' duplicated");
        }
        let extras: Vec<&str> = TARGETS
            .iter()
            .copied()
            .filter(|t| !ALL_TARGETS.contains(t))
            .collect();
        assert_eq!(extras, ["table6", "dump"]);
    }

    #[test]
    fn renderable_excludes_meta_and_utility_targets() {
        assert!(!renderable("dump"));
        assert!(!renderable("all"));
        assert!(!renderable("nonsense"));
        for t in ALL_TARGETS {
            assert!(renderable(t), "{t}");
        }
        assert!(renderable("table6"));
    }

    #[test]
    fn render_is_deterministic_and_nonempty() {
        // A cheap analytic target: same input, same bytes, and the
        // stdout actually contains the table.
        let a = render_target("extrapolate", Scale::Test, SweepMode::Stack).unwrap();
        let b = render_target("extrapolate", Scale::Test, SweepMode::Stack).unwrap();
        assert_eq!(a.stdout, b.stdout);
        assert!(a.stdout.contains("2006"));
        assert_eq!(a.artifacts.len(), 1);
        assert_eq!(a.artifacts[0].name, "extrapolate");
        assert!(a.artifacts[0].json.starts_with('{') || a.artifacts[0].json.starts_with('['));
    }
}
