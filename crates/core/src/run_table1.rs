//! Table 1: estimated effects on the execution-time divisions.

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_analytic::qualitative::{table1, Table1Row, Table1Section};

/// Regenerate Table 1.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// the compiled-in table is incomplete.
pub fn run() -> Result<(Vec<Table1Row>, Table), MembwError> {
    let rows = table1();
    let mut audit = Auditor::new("table1");
    audit.check("inventory", "positive", rows.len() == 13, || {
        format!("Table 1 must carry 13 rows, found {}", rows.len())
    });
    audit.finish()?;
    let mut table = Table::new(
        "Table 1: estimated effects on execution divisions",
        ["Technique / trend", "Section", "f_P", "f_L", "f_B"]
            .map(String::from)
            .to_vec(),
    );
    for r in &rows {
        let section = match r.section {
            Table1Section::LatencyReduction => "A. Latency reduction",
            Table1Section::ProcessorTrends => "B. Processor trends",
            Table1Section::PhysicalTrends => "C. Physical trends",
        };
        table.row(vec![
            r.name.to_string(),
            section.to_string(),
            r.f_p.glyph().to_string(),
            r.f_l.glyph().to_string(),
            r.f_b.glyph().to_string(),
        ]);
    }
    Ok((rows, table))
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_13_rows() {
        let (rows, table) = super::run().expect("audit passes");
        assert_eq!(rows.len(), 13);
        assert_eq!(table.num_rows(), 13);
        assert!(table.render().contains("Lockup-free caches"));
    }
}
