//! Table 1: estimated effects on the execution-time divisions.

use crate::report::Table;
use membw_analytic::qualitative::{table1, Table1Row, Table1Section};

/// Regenerate Table 1.
pub fn run() -> (Vec<Table1Row>, Table) {
    let rows = table1();
    let mut table = Table::new(
        "Table 1: estimated effects on execution divisions",
        ["Technique / trend", "Section", "f_P", "f_L", "f_B"]
            .map(String::from)
            .to_vec(),
    );
    for r in &rows {
        let section = match r.section {
            Table1Section::LatencyReduction => "A. Latency reduction",
            Table1Section::ProcessorTrends => "B. Processor trends",
            Table1Section::PhysicalTrends => "C. Physical trends",
        };
        table.row(vec![
            r.name.to_string(),
            section.to_string(),
            r.f_p.glyph().to_string(),
            r.f_l.glyph().to_string(),
            r.f_b.glyph().to_string(),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_13_rows() {
        let (rows, table) = super::run();
        assert_eq!(rows.len(), 13);
        assert_eq!(table.num_rows(), 13);
        assert!(table.render().contains("Lockup-free caches"));
    }
}
