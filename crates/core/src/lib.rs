//! `membw-core`: orchestration and reporting for the full reproduction of
//! *Memory Bandwidth Limitations of Future Microprocessors* (Burger,
//! Goodman & Kägi, ISCA 1996).
//!
//! Each `run_*` module regenerates one table or figure of the paper from
//! the simulators in the sibling crates:
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`run_fig1`] | Figure 1a/b/c: pin & bandwidth trends |
//! | [`run_table1`] | Table 1: qualitative f_P/f_L/f_B directions |
//! | [`run_table2`] | Table 2: growth rates, analytic + measured |
//! | [`run_table3`] | Table 3: benchmark inventory |
//! | [`run_fig3`] | Figure 3 + Table 6: execution-time decomposition |
//! | [`run_table7`] | Table 7: traffic ratios (+ Eq. 5 effective pin bandwidth) |
//! | [`run_table8`] | Table 8: traffic inefficiencies (+ Eq. 7 bound) |
//! | [`run_fig4`] | Figure 4: traffic vs. cache size curves |
//! | [`run_table9`] | Tables 9–10: factor isolation |
//! | [`run_extrapolation`] | §4.3: the 2006 package projection |
//!
//! The [`report`] module renders paper-style aligned text tables; every
//! result type is `serde`-serializable so runs can be archived and
//! diffed (EXPERIMENTS.md is generated from these).
//!
//! # Example
//!
//! ```
//! use membw_core::run_extrapolation;
//!
//! let (proj, table) = run_extrapolation::run().expect("audit passes");
//! assert!(proj.pins > 2000.0);
//! assert!(table.render().contains("2006"));
//! ```
//!
//! Every entry point feeds the [`audit`] runtime invariant auditor
//! (Eq. 1–4 time ordering, fraction closure, `R > 0`, `G ≥ 1`, the §5
//! MTC bound) before returning; see [`audit`] for the levels.

pub mod audit;
pub mod error;
pub mod fastpath;
pub mod faultio;
pub mod plot;
pub mod report;
pub mod run_ablation;
pub mod run_dram;
pub mod run_epin;
pub mod run_extrapolation;
pub mod run_fig1;
pub mod run_fig2;
pub mod run_fig3;
pub mod run_fig4;
pub mod run_interference;
pub mod run_speculation;
pub mod run_swprefetch;
pub mod run_table1;
pub mod run_table2;
pub mod run_table3;
pub mod run_table7;
pub mod run_table8;
pub mod run_table9;
pub mod service;
pub mod targets;

pub use audit::{AuditLevel, Auditor};
pub use error::{FailedJob, MembwError};
pub use plot::AsciiPlot;
pub use report::Table;

// Re-export the component crates under one roof for downstream users.
pub use membw_analytic as analytic;
pub use membw_cache as cache;
pub use membw_mtc as mtc;
pub use membw_runner as runner;
pub use membw_sim as sim;
pub use membw_sweep as sweep;
pub use membw_trace as trace;
pub use membw_workloads as workloads;
