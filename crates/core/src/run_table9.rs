//! Tables 9–10: isolating the factors behind the traffic-inefficiency
//! gap (associativity, replacement, block size ×2, write-validate).

use crate::audit::Auditor;
use crate::error::{collect_jobs, MembwError};
use crate::report::Table;
use membw_mtc::factors::{factor_gap, FactorGap, TABLE10_FACTORS};
use membw_runner::Runner;
use membw_workloads::{suite92, Scale};
use serde::{Deserialize, Serialize};

/// The Table 9 grid: per factor, per benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9Result {
    /// One entry per (factor, benchmark) cell.
    pub gaps: Vec<FactorGap>,
    /// Capacity used per benchmark (64 KiB; 16 KiB for espresso).
    pub capacities: Vec<(String, u64)>,
}

/// Capacity per benchmark: 64 KiB, except espresso's 16 KiB (its data
/// set is tiny — Table 9's caption).
pub fn capacity_for(name: &str) -> u64 {
    if name == "espresso" {
        16 * 1024
    } else {
        64 * 1024
    }
}

/// Regenerate Table 9 at `scale`, including the Table 10 experiment
/// definitions in the rendered output.
///
/// Jobs are fault-isolated and checkpointed under the batch label
/// `table9`.
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any (benchmark, factor) cell
/// ultimately failed (after the configured retry budget).
pub fn run(scale: Scale) -> Result<(Table9Result, Vec<Table>), MembwError> {
    let suite = suite92(scale);
    let capacities: Vec<(String, u64)> = suite
        .iter()
        .map(|b| (b.name().to_string(), capacity_for(b.name())))
        .collect();
    // One run-engine job per (benchmark, factor) cell, benchmark-major;
    // each job replays the shared recorded trace inside factor_gap.
    let n_f = TABLE10_FACTORS.len();
    let key = format!("v1/table9/{scale:?}/{}x{}", suite.len(), n_f);
    let raw = Runner::from_env().checkpointed("table9", &key, suite.len() * n_f, |k| {
        let b = &suite[k / n_f];
        let spec = &TABLE10_FACTORS[k % n_f];
        factor_gap(spec, &b.replayable(), capacity_for(b.name()))
    });
    let gaps: Vec<FactorGap> = collect_jobs("table9", raw, |k| {
        format!("{}/{}", suite[k / n_f].name(), TABLE10_FACTORS[k % n_f].name)
    })?
    .into_iter()
    .flatten()
    .collect();

    let mut audit = Auditor::new("table9");
    for g in &gaps {
        let cell = format!("{}/{}", g.workload, g.factor);
        // Both endpoints of a factor gap are Eq. 6 inefficiencies.
        audit.inefficiency(&cell, g.g_exp1);
        audit.inefficiency(&cell, g.g_exp2);
    }
    audit.finish()?;

    // Table 9: rows = factors, columns = benchmarks.
    let mut headers = vec!["Factor".to_string()];
    headers.extend(suite.iter().map(|b| b.name().to_string()));
    let mut t9 = Table::new(
        "Table 9: inefficiency gap G(exp1) - G(exp2) per factor (64KB; espresso 16KB)",
        headers,
    );
    for spec in &TABLE10_FACTORS {
        let mut cells = vec![spec.name.to_string()];
        for b in &suite {
            let v = gaps
                .iter()
                .find(|g| g.factor == spec.name && g.workload == b.name())
                .map(|g| format!("{:.1}", g.delta()))
                .unwrap_or_else(|| "-".to_string());
            cells.push(v);
        }
        t9.row(cells);
    }

    let mut t10 = Table::new(
        "Table 10: experimental parameters per factor",
        ["Factor", "Exp1", "Exp2"].map(String::from).to_vec(),
    );
    for spec in &TABLE10_FACTORS {
        t10.row(vec![
            spec.name.to_string(),
            spec.exp1.label(),
            spec.exp2.label(),
        ]);
    }

    Ok((Table9Result { gaps, capacities }, vec![t9, t10]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_factors_by_benchmarks() {
        let (res, tables) = run(Scale::Test).expect("no faults injected");
        assert_eq!(res.gaps.len(), 5 * 7);
        assert_eq!(tables[0].num_rows(), 5);
        assert_eq!(tables[1].num_rows(), 5);
    }

    #[test]
    fn block_size_is_a_consistently_large_factor() {
        // The paper: "The factor that makes the largest consistent
        // contribution to traffic reduction... is reduction of block
        // size." Check it is the max-mean factor across benchmarks.
        let (res, _) = run(Scale::Test).expect("no faults injected");
        let mean = |name: &str| {
            let xs: Vec<f64> = res
                .gaps
                .iter()
                .filter(|g| g.factor == name)
                .map(|g| g.delta())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let block = mean("Blocksize (cache)");
        let replacement = mean("Replacement");
        assert!(
            block > replacement,
            "block-size gap ({block}) should exceed replacement ({replacement})"
        );
    }

    #[test]
    fn espresso_uses_the_small_capacity() {
        let (res, _) = run(Scale::Test).expect("no faults injected");
        let esp = res
            .capacities
            .iter()
            .find(|(n, _)| n == "espresso")
            .expect("espresso present");
        assert_eq!(esp.1, 16 * 1024);
    }
}
