//! Tables 9–10: isolating the factors behind the traffic-inefficiency
//! gap (associativity, replacement, block size ×2, write-validate).

use crate::audit::Auditor;
use crate::error::{collect_jobs, MembwError};
use crate::report::Table;
use membw_mtc::factors::{factor_gap, factor_gaps, FactorGap, TABLE10_FACTORS};
use membw_runner::Runner;
use membw_sweep::SweepMode;
use membw_workloads::{suite92, Scale};
use serde::{Deserialize, Serialize};

/// The Table 9 grid: per factor, per benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9Result {
    /// One entry per (factor, benchmark) cell.
    pub gaps: Vec<FactorGap>,
    /// Capacity used per benchmark (64 KiB; 16 KiB for espresso).
    pub capacities: Vec<(String, u64)>,
}

/// Capacity per benchmark: 64 KiB, except espresso's 16 KiB (its data
/// set is tiny — Table 9's caption).
pub fn capacity_for(name: &str) -> u64 {
    if name == "espresso" {
        16 * 1024
    } else {
        64 * 1024
    }
}

/// Regenerate Table 9 at `scale` with the default sweep engine
/// ([`SweepMode::Stack`]).
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any job ultimately failed (after
/// the configured retry budget).
pub fn run(scale: Scale) -> Result<(Table9Result, Vec<Table>), MembwError> {
    run_with(scale, SweepMode::default())
}

/// Regenerate Table 9 at `scale` with an explicit sweep engine,
/// including the Table 10 experiment definitions in the rendered
/// output.
///
/// Under [`SweepMode::Direct`] there is one job per (benchmark, factor)
/// cell, each replaying the trace and simulating both experiments plus
/// the reference MTC from scratch. Under [`SweepMode::Stack`] there is
/// one job per benchmark, computing all five factors in one
/// [`factor_gaps`] shot (shared trace collection, shared next-use
/// indices, each of the six unique experiments simulated once). The
/// merged `gaps` come out benchmark-major, factor-minor, with identical
/// values, in both modes. Jobs are fault-isolated and checkpointed
/// under the batch label `table9` (the key encodes the sweep mode).
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any job ultimately failed (after
/// the configured retry budget).
pub fn run_with(scale: Scale, mode: SweepMode) -> Result<(Table9Result, Vec<Table>), MembwError> {
    let suite = suite92(scale);
    let capacities: Vec<(String, u64)> = suite
        .iter()
        .map(|b| (b.name().to_string(), capacity_for(b.name())))
        .collect();
    let n_f = TABLE10_FACTORS.len();
    let gaps: Vec<FactorGap> = match mode {
        SweepMode::Direct => {
            let key = format!("v2/table9/{scale:?}/{mode}/{}x{}", suite.len(), n_f);
            let raw = Runner::from_env().checkpointed("table9", &key, suite.len() * n_f, |k| {
                let b = &suite[k / n_f];
                let spec = &TABLE10_FACTORS[k % n_f];
                factor_gap(spec, &b.replayable(), capacity_for(b.name()))
            });
            collect_jobs("table9", raw, |k| {
                format!(
                    "{}/{}",
                    suite[k / n_f].name(),
                    TABLE10_FACTORS[k % n_f].name
                )
            })?
            .into_iter()
            .flatten()
            .collect()
        }
        SweepMode::Stack => {
            let key = format!("v2/table9/{scale:?}/{mode}/{}", suite.len());
            let raw = Runner::from_env().checkpointed("table9", &key, suite.len(), |i| {
                let b = &suite[i];
                factor_gaps(&b.replayable(), capacity_for(b.name()))
            });
            collect_jobs("table9", raw, |i| suite[i].name().to_string())?
                .into_iter()
                .flatten()
                .flatten()
                .collect()
        }
    };

    let mut audit = Auditor::new("table9");
    if mode == SweepMode::Stack && membw_sweep::verify_requested() {
        for g in &gaps {
            let spec = TABLE10_FACTORS
                .iter()
                .find(|s| s.name == g.factor)
                .expect("gap names a Table 10 factor");
            let b = suite
                .iter()
                .find(|b| b.name() == g.workload)
                .expect("gap names a suite benchmark");
            let want = factor_gap(spec, &b.replayable(), g.capacity_bytes);
            let ok = want.as_ref().is_some_and(|w| {
                w.g_exp1.to_bits() == g.g_exp1.to_bits() && w.g_exp2.to_bits() == g.g_exp2.to_bits()
            });
            audit.sweep_exact(&format!("{}/{}", g.workload, g.factor), ok, || {
                format!(
                    "one-shot factor sweep diverged from per-cell measurement: {want:?} vs ({}, {})",
                    g.g_exp1, g.g_exp2
                )
            });
        }
    }
    for g in &gaps {
        let cell = format!("{}/{}", g.workload, g.factor);
        // Both endpoints of a factor gap are Eq. 6 inefficiencies.
        audit.inefficiency(&cell, g.g_exp1);
        audit.inefficiency(&cell, g.g_exp2);
    }
    audit.finish()?;

    // Table 9: rows = factors, columns = benchmarks.
    let mut headers = vec!["Factor".to_string()];
    headers.extend(suite.iter().map(|b| b.name().to_string()));
    let mut t9 = Table::new(
        "Table 9: inefficiency gap G(exp1) - G(exp2) per factor (64KB; espresso 16KB)",
        headers,
    );
    for spec in &TABLE10_FACTORS {
        let mut cells = vec![spec.name.to_string()];
        for b in &suite {
            let v = gaps
                .iter()
                .find(|g| g.factor == spec.name && g.workload == b.name())
                .map(|g| format!("{:.1}", g.delta()))
                .unwrap_or_else(|| "-".to_string());
            cells.push(v);
        }
        t9.row(cells);
    }

    let mut t10 = Table::new(
        "Table 10: experimental parameters per factor",
        ["Factor", "Exp1", "Exp2"].map(String::from).to_vec(),
    );
    for spec in &TABLE10_FACTORS {
        t10.row(vec![
            spec.name.to_string(),
            spec.exp1.label(),
            spec.exp2.label(),
        ]);
    }

    Ok((Table9Result { gaps, capacities }, vec![t9, t10]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_factors_by_benchmarks() {
        let (res, tables) = run(Scale::Test).expect("no faults injected");
        assert_eq!(res.gaps.len(), 5 * 7);
        assert_eq!(tables[0].num_rows(), 5);
        assert_eq!(tables[1].num_rows(), 5);
    }

    #[test]
    fn block_size_is_a_consistently_large_factor() {
        // The paper: "The factor that makes the largest consistent
        // contribution to traffic reduction... is reduction of block
        // size." Check it is the max-mean factor across benchmarks.
        let (res, _) = run(Scale::Test).expect("no faults injected");
        let mean = |name: &str| {
            let xs: Vec<f64> = res
                .gaps
                .iter()
                .filter(|g| g.factor == name)
                .map(|g| g.delta())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let block = mean("Blocksize (cache)");
        let replacement = mean("Replacement");
        assert!(
            block > replacement,
            "block-size gap ({block}) should exceed replacement ({replacement})"
        );
    }

    #[test]
    fn stack_and_direct_modes_agree() {
        let (stack, _) = run_with(Scale::Test, SweepMode::Stack).expect("no faults injected");
        let (direct, _) = run_with(Scale::Test, SweepMode::Direct).expect("no faults injected");
        assert_eq!(stack.gaps.len(), direct.gaps.len());
        for (a, b) in stack.gaps.iter().zip(&direct.gaps) {
            assert_eq!(a.factor, b.factor);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.capacity_bytes, b.capacity_bytes);
            assert_eq!(
                a.g_exp1.to_bits(),
                b.g_exp1.to_bits(),
                "{}/{}",
                a.workload,
                a.factor
            );
            assert_eq!(a.g_exp2.to_bits(), b.g_exp2.to_bits());
        }
    }

    #[test]
    fn espresso_uses_the_small_capacity() {
        let (res, _) = run(Scale::Test).expect("no faults injected");
        let esp = res
            .capacities
            .iter()
            .find(|(n, _)| n == "espresso")
            .expect("espresso present");
        assert_eq!(esp.1, 16 * 1024);
    }
}
