//! Wire types for the `membw serve` newline-delimited JSON protocol.
//!
//! One request per line, one response per line. Requests name a
//! renderable target plus the run parameters the CLI would take as
//! flags; responses are tagged by a `"status"` field so clients can
//! dispatch without guessing:
//!
//! ```text
//! -> {"target":"table7","scale":"test","priority":3}
//! <- {"status":"ok","target":"table7", ... ,"stdout":"Table 7 ..."}
//!
//! -> {"target":"fig3","deadline_ms":10}
//! <- {"status":"error","kind":"deadline","message":"..."}
//!
//! -> {"target":"table8"}          (while the queue is at its bound)
//! <- {"status":"busy","queued":8,"bound":8}
//! ```
//!
//! These types live in `membw-core` (not the serve crate) so the
//! `repro query` client, the daemon, and the tests all speak the same
//! schema from one definition. Serialization goes through the vendored
//! serde shim's [`json::Value`] tree; every field is written in a fixed
//! order so responses are byte-stable — the dedupe fan-out and the
//! result store both rely on "same request, same bytes".

use crate::audit::AuditLevel;
use crate::error::MembwError;
use serde::json::Value;
use serde::{DeError, Deserialize, Serialize};

/// One client request: which target to render, and how.
///
/// Every field except `target` is optional on the wire and defaults to
/// the CLI's defaults (`scale small`, `sweep stack`, `audit warn`, no
/// deadline, priority 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRequest {
    /// Target name (must be renderable: no `dump`, no `all`).
    pub target: String,
    /// Workload scale: `test` | `small` | `full`.
    pub scale: String,
    /// Capacity-axis engine: `stack` | `direct`.
    pub sweep: String,
    /// Invariant-audit level: `off` | `warn` | `strict`.
    pub audit: String,
    /// Per-request response deadline in milliseconds (0 = none). The
    /// computation itself continues past the deadline and lands in the
    /// result store; only the *reply* gives up.
    pub deadline_ms: u64,
    /// Dispatch priority: higher runs first, FIFO within a priority.
    pub priority: u8,
    /// Widest relative error bound (in permille) this client accepts
    /// from the analytic fast lane; the daemon answers analytically
    /// only when the fast lane is enabled *and* the prediction's worst
    /// relative bound fits. `0` opts out entirely. Ignored by daemons
    /// without the fast lane.
    pub analytic_rel_permille: u32,
}

/// Default [`ServiceRequest::analytic_rel_permille`]: the serve-triage
/// tightness threshold ([`crate::analytic::ecm::TRIAGE_MAX_REL`] as
/// permille).
pub const DEFAULT_ANALYTIC_REL_PERMILLE: u32 = 600;

impl ServiceRequest {
    /// A request for `target` with every optional field at its default.
    pub fn new(target: impl Into<String>) -> Self {
        ServiceRequest {
            target: target.into(),
            scale: "small".to_string(),
            sweep: "stack".to_string(),
            audit: "warn".to_string(),
            deadline_ms: 0,
            priority: 0,
            analytic_rel_permille: DEFAULT_ANALYTIC_REL_PERMILLE,
        }
    }

    /// The dedupe / result-store key: everything the rendered bytes
    /// depend on. Audit level, deadline, and priority are deliberately
    /// excluded — they change *how* the answer is produced or awaited,
    /// never the answer's bytes (a strict-audit failure is an error
    /// response, which is never stored or deduped onto).
    pub fn coalesce_key(&self) -> String {
        format!("v1|{}|{}|{}", self.target, self.scale, self.sweep)
    }

    /// Validate field values against the registries the CLI uses.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the bad field (the daemon wraps
    /// it in a `bad-request` / `unknown-target` error response).
    pub fn validate(&self) -> Result<(), String> {
        if !crate::targets::renderable(&self.target) {
            crate::targets::validate_target(&self.target)?;
            return Err(format!(
                "target '{}' is not servable (renderable targets only: no 'dump', no 'all')",
                self.target
            ));
        }
        crate::targets::parse_scale(&self.scale)?;
        crate::sweep::SweepMode::parse(&self.sweep)?;
        self.audit
            .parse::<AuditLevel>()
            .map_err(|e| e.to_string())?;
        Ok(())
    }
}

impl Serialize for ServiceRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("target".to_string(), Value::Str(self.target.clone())),
            ("scale".to_string(), Value::Str(self.scale.clone())),
            ("sweep".to_string(), Value::Str(self.sweep.clone())),
            ("audit".to_string(), Value::Str(self.audit.clone())),
            ("deadline_ms".to_string(), Value::UInt(self.deadline_ms)),
            (
                "priority".to_string(),
                Value::UInt(u64::from(self.priority)),
            ),
        ];
        // Written only when overridden, so pre-fast-lane request
        // bytes are unchanged.
        if self.analytic_rel_permille != DEFAULT_ANALYTIC_REL_PERMILLE {
            fields.push((
                "analytic_rel_permille".to_string(),
                Value::UInt(u64::from(self.analytic_rel_permille)),
            ));
        }
        Value::Object(fields)
    }
}

/// Extract an optional field, defaulting when absent (requests omit
/// what they don't override; `null` means "default" too).
fn opt_field<T: Deserialize>(v: &Value, field: &str, default: T) -> Result<T, DeError> {
    match v.get(field) {
        None | Some(Value::Null) => Ok(default),
        Some(fv) => T::from_value(fv).map_err(|e| DeError(format!("ServiceRequest.{field}: {e}"))),
    }
}

impl Deserialize for ServiceRequest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::expected("request object", v));
        }
        let target: String = serde::__field(v, "target", "ServiceRequest")?;
        Ok(ServiceRequest {
            target,
            scale: opt_field(v, "scale", "small".to_string())?,
            sweep: opt_field(v, "sweep", "stack".to_string())?,
            audit: opt_field(v, "audit", "warn".to_string())?,
            deadline_ms: opt_field(v, "deadline_ms", 0)?,
            priority: opt_field(v, "priority", 0)?,
            analytic_rel_permille: opt_field(
                v,
                "analytic_rel_permille",
                DEFAULT_ANALYTIC_REL_PERMILLE,
            )?,
        })
    }
}

/// Machine-readable error kinds (`ServiceResponse::Error::kind`).
pub mod error_kind {
    /// The request line was not valid JSON / not a request object.
    pub const BAD_REQUEST: &str = "bad-request";
    /// The target name is unknown or not servable.
    pub const UNKNOWN_TARGET: &str = "unknown-target";
    /// The request line exceeded the frame size bound.
    pub const FRAME_TOO_LONG: &str = "frame-too-long";
    /// The job panicked; the daemon survived.
    pub const PANIC: &str = "panic";
    /// Strict-audit invariant violation; `cell` names the matrix cell.
    pub const INVARIANT: &str = "invariant";
    /// One or more run-engine jobs ultimately failed.
    pub const JOBS_FAILED: &str = "jobs-failed";
    /// The per-request `deadline_ms` elapsed before the result.
    pub const DEADLINE: &str = "deadline";
    /// The job was cancelled (daemon drain).
    pub const CANCELLED: &str = "cancelled";
    /// A transient I/O failure (full disk, failed fsync, injected
    /// fault): the render may well succeed if retried — the response
    /// carries a `retry_after_ms` hint and well-behaved clients back
    /// off and retry ([`membw_serve::Backoff`] in the serve crate).
    pub const TRANSIENT: &str = "transient";
    /// Non-retryable internal failure (corrupt trace, logic error).
    pub const INTERNAL: &str = "internal";
}

/// Where an `ok` response's bytes came from.
pub mod source {
    /// Rendered by a simulation run in this daemon process.
    pub const COMPUTED: &str = "computed";
    /// Served from the crash-safe result store (checksum verified).
    pub const STORE: &str = "store";
    /// Answered by the ECM analytic fast lane (no simulation ran);
    /// the response carries the model version and its error bound.
    pub const ANALYTIC: &str = "analytic";
}

/// The target name answered with daemon counters instead of a render.
pub const STATS_TARGET: &str = "stats";

/// Daemon triage counters (the `stats` response payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered by the analytic fast lane.
    pub analytic: u64,
    /// Requests answered by a simulation render in this process.
    pub simulated: u64,
    /// Requests answered from the crash-safe result store.
    pub store: u64,
    /// Requests that joined an identical in-flight computation.
    pub coalesced: u64,
    /// Requests refused (queue at bound, or daemon draining).
    pub rejected: u64,
    /// Store entries quarantined (seal/identity verification failed);
    /// each one cost a recompute, never a corrupt answer.
    pub quarantined: u64,
    /// Quarantined generations deleted by the retention sweep at store
    /// open, bounding the `.corrupt` backlog.
    pub retention_dropped: u64,
    /// Completed renders that could not be persisted (`ENOSPC`, failed
    /// fsync); the result was still served, only durability was lost.
    pub save_failures: u64,
    /// Connections ended by the wire, not the client: read timeouts on
    /// a half-sent frame (slow-loris bound included).
    pub net_timeouts: u64,
    /// Request frames refused for exceeding the daemon's `max_frame`.
    pub oversize_rejected: u64,
    /// Request frames refused as unparseable NDJSON.
    pub malformed_rejected: u64,
    /// Replies whose client vanished mid-write. The render itself
    /// succeeded (and persisted); only delivery on that one connection
    /// was lost.
    pub reply_aborted: u64,
    /// Times a `--supervise` parent has restarted this daemon (0 when
    /// unsupervised or still the first generation).
    pub supervisor_restarts: u64,
}

impl ServeStats {
    /// Store hits per thousand answered requests (store + analytic +
    /// simulated + coalesced); 0 when nothing was answered yet.
    pub fn store_hit_permille(&self) -> u64 {
        let answered = self.analytic + self.simulated + self.store + self.coalesced;
        (self.store * 1000).checked_div(answered).unwrap_or(0)
    }
}

/// One response line, tagged by `status`.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceResponse {
    /// The rendered target.
    Ok {
        /// Echo of the request target.
        target: String,
        /// Echo of the effective scale.
        scale: String,
        /// Echo of the effective sweep mode.
        sweep: String,
        /// [`source::COMPUTED`] or [`source::STORE`]. Deduped followers
        /// report the same source as the leader — the response bytes
        /// must be identical for every coalesced client.
        source: String,
        /// FNV-1a 64 of `stdout`, zero-padded hex — clients can verify
        /// the payload survived the wire.
        fnv64: String,
        /// Run-engine jobs this request executed (0 on a store hit).
        jobs: u64,
        /// Jobs replayed from checkpoints instead of executing.
        resumed: u64,
        /// For [`source::ANALYTIC`]: the predictor's model version.
        /// `None` (and omitted on the wire) for simulated sources.
        model: Option<String>,
        /// For [`source::ANALYTIC`]: the prediction's worst relative
        /// error bound across the rendered cells, in permille.
        bound_rel_permille: Option<u64>,
        /// Exactly the bytes `repro <target>` prints on stdout (for
        /// [`source::ANALYTIC`], the analytic rendering of it).
        stdout: String,
    },
    /// Daemon triage counters (reply to [`STATS_TARGET`]).
    Stats(ServeStats),
    /// The wait queue is at its bound; retry later (429 analogue).
    Busy {
        /// Requests waiting when this one was refused.
        queued: u64,
        /// The configured queue bound.
        bound: u64,
    },
    /// The daemon is draining (SIGTERM); no new work is admitted.
    Draining,
    /// The request failed; the daemon is fine.
    Error {
        /// One of [`error_kind`]'s constants.
        kind: String,
        /// Human-readable description.
        message: String,
        /// For [`error_kind::INVARIANT`]: the auditor's matrix cell
        /// (`"compress @ 16KB"`).
        cell: Option<String>,
        /// For [`error_kind::TRANSIENT`]: how long a polite client
        /// should wait before retrying, in milliseconds. `None` (and
        /// omitted on the wire) for non-retryable kinds, so every
        /// pre-taxonomy response stays byte-identical.
        retry_after_ms: Option<u64>,
    },
}

/// The `retry_after_ms` hint attached to [`error_kind::TRANSIENT`]
/// responses: long enough for a brief I/O stall to clear, short enough
/// that a retry storm is bounded by the backoff policy, not this hint.
pub const TRANSIENT_RETRY_AFTER_MS: u64 = 250;

impl ServiceResponse {
    /// Build the error response for a failed render, classifying the
    /// [`MembwError`] and surfacing the auditor's cell name. I/O
    /// failures are [`error_kind::TRANSIENT`] — a full disk or failed
    /// fsync can clear — and carry a retry hint; everything else is
    /// non-retryable.
    pub fn from_error(err: &MembwError) -> Self {
        let (kind, cell) = match err {
            MembwError::InvariantViolation { violations } => (
                error_kind::INVARIANT,
                violations.first().map(|v| v.cell.clone()),
            ),
            MembwError::Jobs { .. } => (error_kind::JOBS_FAILED, None),
            MembwError::Io { .. } => (error_kind::TRANSIENT, None),
            MembwError::Trace { .. } => (error_kind::INTERNAL, None),
        };
        let retry_after_ms = (kind == error_kind::TRANSIENT).then_some(TRANSIENT_RETRY_AFTER_MS);
        ServiceResponse::Error {
            kind: kind.to_string(),
            message: err.to_string(),
            cell,
            retry_after_ms,
        }
    }

    /// The `status` tag this response serializes under.
    pub fn status(&self) -> &'static str {
        match self {
            ServiceResponse::Ok { .. } => "ok",
            ServiceResponse::Stats(_) => "stats",
            ServiceResponse::Busy { .. } => "busy",
            ServiceResponse::Draining => "draining",
            ServiceResponse::Error { .. } => "error",
        }
    }
}

impl Serialize for ServiceResponse {
    fn to_value(&self) -> Value {
        let mut fields = vec![("status".to_string(), Value::Str(self.status().to_string()))];
        match self {
            ServiceResponse::Ok {
                target,
                scale,
                sweep,
                source,
                fnv64,
                jobs,
                resumed,
                model,
                bound_rel_permille,
                stdout,
            } => {
                fields.push(("target".to_string(), Value::Str(target.clone())));
                fields.push(("scale".to_string(), Value::Str(scale.clone())));
                fields.push(("sweep".to_string(), Value::Str(sweep.clone())));
                fields.push(("source".to_string(), Value::Str(source.clone())));
                fields.push(("fnv64".to_string(), Value::Str(fnv64.clone())));
                fields.push(("jobs".to_string(), Value::UInt(*jobs)));
                fields.push(("resumed".to_string(), Value::UInt(*resumed)));
                // Provenance fields appear only on analytic answers so
                // simulated response bytes are unchanged.
                if let Some(m) = model {
                    fields.push(("model".to_string(), Value::Str(m.clone())));
                }
                if let Some(b) = bound_rel_permille {
                    fields.push(("bound_rel_permille".to_string(), Value::UInt(*b)));
                }
                fields.push(("stdout".to_string(), Value::Str(stdout.clone())));
            }
            ServiceResponse::Stats(s) => {
                fields.push(("analytic".to_string(), Value::UInt(s.analytic)));
                fields.push(("simulated".to_string(), Value::UInt(s.simulated)));
                fields.push(("store".to_string(), Value::UInt(s.store)));
                fields.push(("coalesced".to_string(), Value::UInt(s.coalesced)));
                fields.push(("rejected".to_string(), Value::UInt(s.rejected)));
                fields.push(("quarantined".to_string(), Value::UInt(s.quarantined)));
                fields.push((
                    "retention_dropped".to_string(),
                    Value::UInt(s.retention_dropped),
                ));
                fields.push(("save_failures".to_string(), Value::UInt(s.save_failures)));
                fields.push(("net_timeouts".to_string(), Value::UInt(s.net_timeouts)));
                fields.push((
                    "oversize_rejected".to_string(),
                    Value::UInt(s.oversize_rejected),
                ));
                fields.push((
                    "malformed_rejected".to_string(),
                    Value::UInt(s.malformed_rejected),
                ));
                fields.push(("reply_aborted".to_string(), Value::UInt(s.reply_aborted)));
                fields.push((
                    "supervisor_restarts".to_string(),
                    Value::UInt(s.supervisor_restarts),
                ));
                fields.push((
                    "store_hit_permille".to_string(),
                    Value::UInt(s.store_hit_permille()),
                ));
            }
            ServiceResponse::Busy { queued, bound } => {
                fields.push(("queued".to_string(), Value::UInt(*queued)));
                fields.push(("bound".to_string(), Value::UInt(*bound)));
            }
            ServiceResponse::Draining => {}
            ServiceResponse::Error {
                kind,
                message,
                cell,
                retry_after_ms,
            } => {
                fields.push(("kind".to_string(), Value::Str(kind.clone())));
                fields.push(("message".to_string(), Value::Str(message.clone())));
                fields.push((
                    "cell".to_string(),
                    match cell {
                        Some(c) => Value::Str(c.clone()),
                        None => Value::Null,
                    },
                ));
                // Written only on retryable errors, so every other
                // error response's bytes are unchanged.
                if let Some(ms) = retry_after_ms {
                    fields.push(("retry_after_ms".to_string(), Value::UInt(*ms)));
                }
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for ServiceResponse {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let status: String = serde::__field(v, "status", "ServiceResponse")?;
        match status.as_str() {
            "ok" => Ok(ServiceResponse::Ok {
                target: serde::__field(v, "target", "ServiceResponse")?,
                scale: serde::__field(v, "scale", "ServiceResponse")?,
                sweep: serde::__field(v, "sweep", "ServiceResponse")?,
                source: serde::__field(v, "source", "ServiceResponse")?,
                fnv64: serde::__field(v, "fnv64", "ServiceResponse")?,
                jobs: serde::__field(v, "jobs", "ServiceResponse")?,
                resumed: serde::__field(v, "resumed", "ServiceResponse")?,
                model: opt_field(v, "model", None)?,
                bound_rel_permille: opt_field(v, "bound_rel_permille", None)?,
                stdout: serde::__field(v, "stdout", "ServiceResponse")?,
            }),
            "stats" => Ok(ServiceResponse::Stats(ServeStats {
                analytic: serde::__field(v, "analytic", "ServiceResponse")?,
                simulated: serde::__field(v, "simulated", "ServiceResponse")?,
                store: serde::__field(v, "store", "ServiceResponse")?,
                coalesced: serde::__field(v, "coalesced", "ServiceResponse")?,
                rejected: serde::__field(v, "rejected", "ServiceResponse")?,
                // Optional so pre-taxonomy daemons still parse.
                quarantined: opt_field(v, "quarantined", 0)?,
                retention_dropped: opt_field(v, "retention_dropped", 0)?,
                save_failures: opt_field(v, "save_failures", 0)?,
                // Optional so pre-wire-robustness daemons still parse.
                net_timeouts: opt_field(v, "net_timeouts", 0)?,
                oversize_rejected: opt_field(v, "oversize_rejected", 0)?,
                malformed_rejected: opt_field(v, "malformed_rejected", 0)?,
                reply_aborted: opt_field(v, "reply_aborted", 0)?,
                supervisor_restarts: opt_field(v, "supervisor_restarts", 0)?,
            })),
            "busy" => Ok(ServiceResponse::Busy {
                queued: serde::__field(v, "queued", "ServiceResponse")?,
                bound: serde::__field(v, "bound", "ServiceResponse")?,
            }),
            "draining" => Ok(ServiceResponse::Draining),
            "error" => Ok(ServiceResponse::Error {
                kind: serde::__field(v, "kind", "ServiceResponse")?,
                message: serde::__field(v, "message", "ServiceResponse")?,
                cell: opt_field(v, "cell", None)?,
                retry_after_ms: opt_field(v, "retry_after_ms", None)?,
            }),
            other => Err(DeError(format!("unknown response status {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_fill_missing_fields() {
        let r: ServiceRequest =
            serde_json::from_str(r#"{"target":"table7"}"#).expect("minimal request");
        assert_eq!(r, ServiceRequest::new("table7"));
        assert_eq!(r.scale, "small");
        assert_eq!(r.sweep, "stack");
        assert_eq!(r.audit, "warn");
        assert_eq!(r.deadline_ms, 0);
        assert_eq!(r.priority, 0);
    }

    #[test]
    fn request_round_trips() {
        let mut r = ServiceRequest::new("fig4");
        r.scale = "test".to_string();
        r.sweep = "direct".to_string();
        r.audit = "strict".to_string();
        r.deadline_ms = 1500;
        r.priority = 9;
        let line = serde_json::to_string(&r).unwrap();
        let back: ServiceRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn request_rejects_wrong_shapes() {
        assert!(serde_json::from_str::<ServiceRequest>("42").is_err());
        assert!(serde_json::from_str::<ServiceRequest>(r#"{"scale":"test"}"#).is_err());
        assert!(
            serde_json::from_str::<ServiceRequest>(r#"{"target":"t","priority":300}"#).is_err(),
            "priority must fit u8"
        );
    }

    #[test]
    fn validate_rejects_unservable_targets() {
        assert!(ServiceRequest::new("table7").validate().is_ok());
        let e = ServiceRequest::new("dump").validate().unwrap_err();
        assert!(e.contains("not servable"), "{e}");
        let e = ServiceRequest::new("all").validate().unwrap_err();
        assert!(e.contains("not servable"), "{e}");
        let e = ServiceRequest::new("tabel7").validate().unwrap_err();
        assert!(e.contains("did you mean"), "{e}");
        let mut r = ServiceRequest::new("table7");
        r.scale = "huge".to_string();
        assert!(r.validate().is_err());
        let mut r = ServiceRequest::new("table7");
        r.sweep = "sideways".to_string();
        assert!(r.validate().is_err());
        let mut r = ServiceRequest::new("table7");
        r.audit = "loud".to_string();
        assert!(r.validate().is_err());
    }

    #[test]
    fn coalesce_key_ignores_delivery_parameters() {
        let mut a = ServiceRequest::new("table7");
        let mut b = ServiceRequest::new("table7");
        a.priority = 5;
        a.deadline_ms = 100;
        a.audit = "off".to_string();
        b.priority = 0;
        assert_eq!(a.coalesce_key(), b.coalesce_key());
        b.scale = "test".to_string();
        assert_ne!(a.coalesce_key(), b.coalesce_key());
    }

    #[test]
    fn responses_round_trip_every_variant() {
        let cases = vec![
            ServiceResponse::Ok {
                target: "table7".into(),
                scale: "test".into(),
                sweep: "stack".into(),
                source: source::COMPUTED.into(),
                fnv64: "00000000deadbeef".into(),
                jobs: 12,
                resumed: 3,
                model: None,
                bound_rel_permille: None,
                stdout: "Table 7\nline \"two\"\n".into(),
            },
            ServiceResponse::Ok {
                target: "fig4".into(),
                scale: "test".into(),
                sweep: "stack".into(),
                source: source::ANALYTIC.into(),
                fnv64: "00000000deadbeef".into(),
                jobs: 0,
                resumed: 0,
                model: Some("ecm-1".into()),
                bound_rel_permille: Some(412),
                stdout: "Figure 4 (analytic)\n".into(),
            },
            ServiceResponse::Stats(ServeStats {
                analytic: 5,
                simulated: 2,
                store: 3,
                coalesced: 1,
                rejected: 4,
                quarantined: 2,
                retention_dropped: 1,
                save_failures: 1,
                net_timeouts: 2,
                oversize_rejected: 1,
                malformed_rejected: 7,
                reply_aborted: 1,
                supervisor_restarts: 3,
            }),
            ServiceResponse::Busy {
                queued: 8,
                bound: 8,
            },
            ServiceResponse::Draining,
            ServiceResponse::Error {
                kind: error_kind::INVARIANT.into(),
                message: "1 paper invariant(s) violated".into(),
                cell: Some("compress @ 16KB".into()),
                retry_after_ms: None,
            },
            ServiceResponse::Error {
                kind: error_kind::PANIC.into(),
                message: "job panicked".into(),
                cell: None,
                retry_after_ms: None,
            },
            ServiceResponse::Error {
                kind: error_kind::TRANSIENT.into(),
                message: "cannot fsync artifact".into(),
                cell: None,
                retry_after_ms: Some(TRANSIENT_RETRY_AFTER_MS),
            },
        ];
        for resp in cases {
            let line = serde_json::to_string(&resp).unwrap();
            assert!(!line.contains('\n'), "one response = one line: {line:?}");
            let back: ServiceResponse = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn serialization_is_byte_stable() {
        let r = ServiceResponse::Busy {
            queued: 1,
            bound: 2,
        };
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&r).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            r#"{"status":"busy","queued":1,"bound":2}"#
        );
    }

    #[test]
    fn analytic_tolerance_defaults_and_round_trips() {
        // The default matches the predictor's triage threshold.
        assert_eq!(
            DEFAULT_ANALYTIC_REL_PERMILLE,
            (crate::analytic::ecm::TRIAGE_MAX_REL * 1000.0) as u32
        );
        // Absent on the wire at the default; defaulted when parsing.
        let r = ServiceRequest::new("fig4");
        assert!(!serde_json::to_string(&r).unwrap().contains("analytic"));
        let back: ServiceRequest =
            serde_json::from_str(r#"{"target":"fig4"}"#).expect("minimal request");
        assert_eq!(back.analytic_rel_permille, DEFAULT_ANALYTIC_REL_PERMILLE);
        // Overrides survive a round trip.
        let mut r = ServiceRequest::new("fig4");
        r.analytic_rel_permille = 5000;
        let line = serde_json::to_string(&r).unwrap();
        assert!(line.contains("analytic_rel_permille"), "{line}");
        let back: ServiceRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn store_hit_rate_counts_answered_requests_only() {
        let mut s = ServeStats::default();
        assert_eq!(s.store_hit_permille(), 0);
        s.store = 1;
        s.analytic = 1;
        s.simulated = 1;
        s.coalesced = 1;
        s.rejected = 100; // refusals are not answers
        assert_eq!(s.store_hit_permille(), 250);
    }

    #[test]
    fn errors_classify_with_auditor_cell() {
        let e = MembwError::InvariantViolation {
            violations: vec![crate::audit::Violation {
                target: "table8".to_string(),
                cell: "compress @ 16KB".to_string(),
                invariant: "inefficiency",
                detail: "G = 0.7 < 1".to_string(),
            }],
        };
        match ServiceResponse::from_error(&e) {
            ServiceResponse::Error { kind, cell, .. } => {
                assert_eq!(kind, error_kind::INVARIANT);
                assert_eq!(cell.as_deref(), Some("compress @ 16KB"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let e = MembwError::io(
            "write result",
            "/tmp/x",
            std::io::Error::from(std::io::ErrorKind::PermissionDenied),
        );
        match ServiceResponse::from_error(&e) {
            ServiceResponse::Error {
                kind,
                cell,
                retry_after_ms,
                ..
            } => {
                assert_eq!(kind, error_kind::TRANSIENT, "I/O failures are retryable");
                assert_eq!(cell, None);
                assert_eq!(retry_after_ms, Some(TRANSIENT_RETRY_AFTER_MS));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn retry_hint_absent_from_non_retryable_error_bytes() {
        // Pre-taxonomy error responses must keep their exact bytes:
        // the hint field appears only on transient errors.
        let plain = ServiceResponse::Error {
            kind: error_kind::PANIC.into(),
            message: "m".into(),
            cell: None,
            retry_after_ms: None,
        };
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            r#"{"status":"error","kind":"panic","message":"m","cell":null}"#
        );
        let transient = ServiceResponse::Error {
            kind: error_kind::TRANSIENT.into(),
            message: "m".into(),
            cell: None,
            retry_after_ms: Some(250),
        };
        assert_eq!(
            serde_json::to_string(&transient).unwrap(),
            r#"{"status":"error","kind":"transient","message":"m","cell":null,"retry_after_ms":250}"#
        );
    }
}
