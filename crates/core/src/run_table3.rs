//! Table 3: benchmark trace lengths and inputs — the paper's inventory
//! next to this reproduction's scaled instances.

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_trace::sink::CountSink;
use membw_trace::Workload;
use membw_workloads::{suite92, suite95, Scale};
use serde::Serialize;

/// One benchmark's paper-vs-ours bookkeeping.
///
/// (`Serialize` only: rebuilt from the compiled-in suites every run,
/// never reloaded from an archive.)
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Suite label (`SPEC92`/`SPEC95`).
    pub suite: &'static str,
    /// Paper's traced references, millions.
    pub paper_refs_millions: f64,
    /// Paper's data-set size, MB.
    pub paper_dataset_mb: f64,
    /// Our instance's memory references, millions.
    pub our_refs_millions: f64,
    /// Our instance's declared footprint, MB.
    pub our_footprint_mb: f64,
}

/// Regenerate Table 3 at `scale`.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// any benchmark traced nothing or declares an empty footprint.
pub fn run(scale: Scale) -> Result<(Vec<Table3Row>, Table), MembwError> {
    let mut rows = Vec::new();
    for b in suite92(scale).iter().chain(suite95(scale).iter()) {
        let mut c = CountSink::new();
        b.replayable().generate(&mut c);
        rows.push(Table3Row {
            name: b.name().to_string(),
            suite: match b.suite() {
                membw_workloads::Suite::Spec92 => "SPEC92",
                membw_workloads::Suite::Spec95 => "SPEC95",
            },
            paper_refs_millions: b.paper_refs_millions,
            paper_dataset_mb: b.paper_dataset_mb,
            our_refs_millions: c.mem_refs() as f64 / 1e6,
            our_footprint_mb: b.footprint_bytes as f64 / (1024.0 * 1024.0),
        });
    }

    let mut audit = Auditor::new("table3");
    for r in &rows {
        audit.positive(&r.name, "traced references", r.our_refs_millions);
        audit.positive(&r.name, "declared footprint", r.our_footprint_mb);
    }
    audit.finish()?;

    let mut table = Table::new(
        format!("Table 3: benchmark inventory ({scale:?} scale; paper vs. this reproduction)"),
        [
            "Benchmark",
            "Suite",
            "Paper refs (M)",
            "Paper data (MB)",
            "Our refs (M)",
            "Our data (MB)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            r.suite.to_string(),
            format!("{:.1}", r.paper_refs_millions),
            format!("{:.2}", r.paper_dataset_mb),
            format!("{:.2}", r.our_refs_millions),
            format!("{:.2}", r.our_footprint_mb),
        ]);
    }
    Ok((rows, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_fourteen_benchmarks() {
        let (rows, table) = run(Scale::Test).expect("audit passes");
        assert_eq!(rows.len(), 14);
        assert_eq!(table.num_rows(), 14);
        for r in &rows {
            assert!(r.our_refs_millions > 0.0, "{} traced nothing", r.name);
        }
    }
}
