//! Runtime invariant auditor: the paper's identities, checked on every
//! run instead of only in the test suite.
//!
//! The decomposition of §3 is only meaningful while its defining
//! inequalities hold (`T ≥ T_I ≥ T_P ≥ 0`, Eq. 1–4, and the fraction
//! closure `f_P + f_L + f_B = 1`), and Table 8's inefficiency is only a
//! lower-bound statement while `G = D_cache / D_MTC ≥ 1` (Eq. 6) — i.e.
//! while the MTC really moves no more bytes than any real cache of the
//! same capacity (§5). Every `run_*` entry point feeds an [`Auditor`]
//! with its cells before returning, so a regression, a miscompiled hot
//! loop, or a corrupt replayed artifact is caught at run time, in the
//! run it poisons, naming the exact (benchmark, experiment) cell.
//!
//! Three levels, selected by `repro --audit {off,warn,strict}`:
//!
//! * **off** — checks are skipped entirely;
//! * **warn** (default) — violations print structured warnings on
//!   stderr (stdout stays byte-identical) and the run proceeds;
//! * **strict** — violations become
//!   [`MembwError::InvariantViolation`](crate::MembwError) and the
//!   target fails.
//!
//! The invariants enforced, with their paper anchors:
//!
//! | id | invariant | paper |
//! |----|-----------|-------|
//! | `time-order` | `T ≥ T_I ≥ T_P ≥ 0`, `T_P > 0` | Eq. 1–4 |
//! | `fraction-closure` | `f_P + f_L + f_B ≈ 1`, each in `[0, 1]` | Eq. 2–4 |
//! | `traffic-ratio` | every reported `R > 0` and finite | Eq. 5, Table 7 |
//! | `inefficiency` | `G ≥ 1` | Eq. 6, Table 8 |
//! | `mtc-bound` | MTC traffic ≤ any real cache's traffic at equal capacity | §5 |
//! | `finite` / `positive` | reported scalars are finite (and positive where required) | — |
//! | `sweep-exact` | one-pass sweep-engine cells equal direct simulation (`MEMBW_SWEEP_VERIFY=1`) | — |
//! | `analytic-bound` | \|ECM prediction − simulation\| ≤ the asserted bound (`--analytic assist`) | Eq. 1–6 |
//!
//! The integration suites (`tests/decomposition_invariants.rs`,
//! `tests/mtc_bounds.rs`) call the same checks through
//! [`Auditor::strict`], so test-time and run-time invariants cannot
//! drift apart.

use crate::error::MembwError;
use membw_sim::Decomposition;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// How hard the auditor reacts to a violated invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditLevel {
    /// Skip all checks.
    Off,
    /// Check everything; report violations on stderr and keep going.
    #[default]
    Warn,
    /// Check everything; violations fail the target with
    /// [`MembwError::InvariantViolation`].
    Strict,
}

impl AuditLevel {
    /// The CLI spelling (`off` / `warn` / `strict`).
    pub fn as_str(self) -> &'static str {
        match self {
            AuditLevel::Off => "off",
            AuditLevel::Warn => "warn",
            AuditLevel::Strict => "strict",
        }
    }
}

impl std::str::FromStr for AuditLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(AuditLevel::Off),
            "warn" => Ok(AuditLevel::Warn),
            "strict" => Ok(AuditLevel::Strict),
            other => Err(format!(
                "unknown audit level '{other}' (expected off|warn|strict)"
            )),
        }
    }
}

/// Process-wide level set by `repro --audit` (encoded; 0 = Off,
/// 1 = Warn, 2 = Strict). Defaults to Warn.
static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(1);

thread_local! {
    /// Thread-local override installed by [`with_level`] (tests compare
    /// levels side by side without touching process state).
    static TL_LEVEL: Cell<Option<AuditLevel>> = const { Cell::new(None) };
}

fn encode(level: AuditLevel) -> u8 {
    match level {
        AuditLevel::Off => 0,
        AuditLevel::Warn => 1,
        AuditLevel::Strict => 2,
    }
}

fn decode(v: u8) -> AuditLevel {
    match v {
        0 => AuditLevel::Off,
        2 => AuditLevel::Strict,
        _ => AuditLevel::Warn,
    }
}

/// Set the process-wide audit level (`repro --audit LEVEL`).
pub fn set_level(level: AuditLevel) {
    GLOBAL_LEVEL.store(encode(level), Ordering::SeqCst);
}

/// The effective audit level on this thread.
pub fn configured_level() -> AuditLevel {
    TL_LEVEL
        .with(Cell::get)
        .unwrap_or_else(|| decode(GLOBAL_LEVEL.load(Ordering::SeqCst)))
}

/// Run `f` with the audit level forced to `level` on this thread,
/// restoring the previous override afterwards.
pub fn with_level<R>(level: AuditLevel, f: impl FnOnce() -> R) -> R {
    let prev = TL_LEVEL.with(|c| c.replace(Some(level)));
    struct Restore(Option<AuditLevel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_LEVEL.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Process-wide audit accounting, for the per-run summary `repro`
/// prints on stderr.
static AUDIT_CHECKS: AtomicU64 = AtomicU64::new(0);
static AUDIT_VIOLATIONS: AtomicU64 = AtomicU64::new(0);
static AUDIT_TARGETS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide audit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditSummary {
    /// Individual invariant checks evaluated.
    pub checks: u64,
    /// Checks that failed.
    pub violations: u64,
    /// `run_*` targets audited (one [`Auditor::finish`] each).
    pub targets: u64,
}

/// Snapshot the process-wide audit counters.
pub fn summary() -> AuditSummary {
    AuditSummary {
        checks: AUDIT_CHECKS.load(Ordering::Relaxed),
        violations: AUDIT_VIOLATIONS.load(Ordering::Relaxed),
        targets: AUDIT_TARGETS.load(Ordering::Relaxed),
    }
}

/// One violated invariant: which target, which matrix cell, which
/// identity, and the measured values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The `run_*` target being audited (`"fig3"`, `"table8"`).
    pub target: String,
    /// The matrix cell (`"compress/F"`, `"swm @ 16KB"`).
    pub cell: String,
    /// Invariant id (`"time-order"`, `"inefficiency"`).
    pub invariant: &'static str,
    /// Human-readable measured-vs-expected detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: cell {}: {}: {}",
            self.target, self.cell, self.invariant, self.detail
        )
    }
}

/// Collects invariant checks for one `run_*` invocation.
///
/// Construct with [`Auditor::new`] (honours the configured level) or
/// [`Auditor::strict`] (tests), feed it cells, then [`Auditor::finish`].
#[derive(Debug)]
pub struct Auditor {
    target: String,
    level: AuditLevel,
    checks: u64,
    violations: Vec<Violation>,
}

/// Slack for floating-point identities: the decomposition fractions are
/// computed from exact cycle counts, so anything beyond rounding noise
/// is a real violation.
const EPS: f64 = 1e-6;

impl Auditor {
    /// An auditor for `target` at the configured level.
    pub fn new(target: impl Into<String>) -> Self {
        Self::at(target, configured_level())
    }

    /// An auditor pinned to [`AuditLevel::Strict`] — the test suites use
    /// this so their assertions are exactly the runtime checks.
    pub fn strict(target: impl Into<String>) -> Self {
        Self::at(target, AuditLevel::Strict)
    }

    /// An auditor at an explicit level.
    pub fn at(target: impl Into<String>, level: AuditLevel) -> Self {
        Self {
            target: target.into(),
            level,
            checks: 0,
            violations: Vec::new(),
        }
    }

    /// `true` if this auditor performs no checks.
    pub fn is_off(&self) -> bool {
        self.level == AuditLevel::Off
    }

    /// Record one invariant check. `detail` is only rendered on
    /// failure, so passing checks cost no formatting.
    pub fn check(
        &mut self,
        cell: &str,
        invariant: &'static str,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        if self.is_off() {
            return;
        }
        self.checks += 1;
        if ok {
            return;
        }
        let v = Violation {
            target: self.target.clone(),
            cell: cell.to_string(),
            invariant,
            detail: detail(),
        };
        if self.level == AuditLevel::Warn {
            eprintln!("audit[warn] {v}");
        }
        self.violations.push(v);
    }

    /// Eq. 1–4: `T ≥ T_I ≥ T_P > 0`, fraction closure, fractions in
    /// range — the §3 identities for one decomposition cell.
    pub fn decomposition(&mut self, cell: &str, d: &Decomposition) {
        if self.is_off() {
            return;
        }
        self.check(cell, "time-order", d.t >= d.t_i && d.t_i >= d.t_p, || {
            format!(
                "T ≥ T_I ≥ T_P violated (Eq. 1–4): T={} T_I={} T_P={}",
                d.t, d.t_i, d.t_p
            )
        });
        self.check(cell, "time-order", d.t_p > 0, || {
            format!("T_P must be positive (Eq. 2), got {}", d.t_p)
        });
        let sum = d.f_p + d.f_l + d.f_b;
        self.check(cell, "fraction-closure", (sum - 1.0).abs() <= EPS, || {
            format!(
                "f_P + f_L + f_B = {sum} (Eq. 2–4 require 1): f_P={} f_L={} f_B={}",
                d.f_p, d.f_l, d.f_b
            )
        });
        for (name, f) in [("f_P", d.f_p), ("f_L", d.f_l), ("f_B", d.f_b)] {
            self.check(
                cell,
                "fraction-closure",
                (-EPS..=1.0 + EPS).contains(&f),
                || format!("{name} = {f} outside [0, 1]"),
            );
        }
        self.check(cell, "positive", d.uops > 0, || {
            "decomposition executed zero uops".to_string()
        });
    }

    /// Eq. 5 / Table 7: a reported traffic ratio must be finite and
    /// positive (a zero or negative ratio means the instrument broke,
    /// not that the cache was perfect — oversized caches are reported
    /// as `None`/`<<<`, never as 0).
    pub fn traffic_ratio(&mut self, cell: &str, r: f64) {
        self.check(cell, "traffic-ratio", r.is_finite() && r > 0.0, || {
            format!("traffic ratio R = {r} must be finite and > 0 (Eq. 5)")
        });
    }

    /// Eq. 6 / Table 8: `G = D_cache / D_MTC ≥ 1`.
    pub fn inefficiency(&mut self, cell: &str, g: f64) {
        self.check(
            cell,
            "inefficiency",
            g.is_finite() && g >= 1.0 - EPS,
            || format!("G = {g} < 1 (Eq. 6: the MTC is a traffic lower bound)"),
        );
    }

    /// §5: the MTC moves no more bytes than a real cache of the same
    /// capacity on the same trace.
    pub fn mtc_bound(&mut self, cell: &str, mtc_traffic: u64, cache_traffic: u64) {
        self.check(cell, "mtc-bound", mtc_traffic <= cache_traffic, || {
            format!(
                "MTC traffic {mtc_traffic} exceeds the equal-capacity cache's {cache_traffic} (§5)"
            )
        });
    }

    /// Sweep-engine cross-check (`MEMBW_SWEEP_VERIFY=1`): a cell
    /// computed by the one-pass stack engine must reproduce direct
    /// per-configuration simulation exactly.
    pub fn sweep_exact(&mut self, cell: &str, ok: bool, detail: impl FnOnce() -> String) {
        self.check(cell, "sweep-exact", ok, detail);
    }

    /// `--analytic assist`: the ECM predictor's asserted error bound
    /// must cover the simulated value — |prediction − simulation| ≤
    /// bound. A failure means the model (version `model`) has drifted
    /// from the simulator and must be recalibrated.
    pub fn analytic_bound(
        &mut self,
        cell: &str,
        model: &str,
        predicted: f64,
        bound: f64,
        simulated: f64,
    ) {
        let err = (predicted - simulated).abs();
        self.check(
            cell,
            "analytic-bound",
            err.is_finite() && err <= bound + EPS,
            || {
                format!(
                    "|prediction − simulation| = |{predicted:.1} − {simulated:.1}| = {err:.1} \
                     exceeds the asserted bound {bound:.1} (model {model})"
                )
            },
        );
    }

    /// A reported scalar that must be finite and strictly positive.
    pub fn positive(&mut self, cell: &str, what: &str, v: f64) {
        self.check(cell, "positive", v.is_finite() && v > 0.0, || {
            format!("{what} = {v} must be finite and > 0")
        });
    }

    /// A reported scalar that must be finite.
    pub fn finite(&mut self, cell: &str, what: &str, v: f64) {
        self.check(cell, "finite", v.is_finite(), || {
            format!("{what} = {v} must be finite")
        });
    }

    /// A fraction-like scalar that must sit in `[0, 1]` (± rounding).
    pub fn unit_fraction(&mut self, cell: &str, what: &str, v: f64) {
        self.check(
            cell,
            "fraction-closure",
            v.is_finite() && (-EPS..=1.0 + EPS).contains(&v),
            || format!("{what} = {v} outside [0, 1]"),
        );
    }

    /// Number of checks evaluated so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Close out the audit: fold the counts into the process-wide
    /// summary and, under [`AuditLevel::Strict`], fail on any violation.
    ///
    /// # Errors
    ///
    /// Returns [`MembwError::InvariantViolation`] carrying every
    /// recorded violation when the level is strict and at least one
    /// check failed.
    pub fn finish(self) -> Result<(), MembwError> {
        if self.is_off() {
            return Ok(());
        }
        AUDIT_TARGETS.fetch_add(1, Ordering::Relaxed);
        AUDIT_CHECKS.fetch_add(self.checks, Ordering::Relaxed);
        AUDIT_VIOLATIONS.fetch_add(self.violations.len() as u64, Ordering::Relaxed);
        if self.level == AuditLevel::Strict && !self.violations.is_empty() {
            return Err(MembwError::InvariantViolation {
                violations: self.violations,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_decomposition() -> Decomposition {
        Decomposition {
            t_p: 100,
            t_i: 150,
            t: 200,
            f_p: 0.5,
            f_l: 0.25,
            f_b: 0.25,
            full_mem: Default::default(),
            uops: 400,
        }
    }

    #[test]
    fn levels_parse_and_roundtrip() {
        for l in [AuditLevel::Off, AuditLevel::Warn, AuditLevel::Strict] {
            assert_eq!(l.as_str().parse::<AuditLevel>().unwrap(), l);
        }
        assert!("loud".parse::<AuditLevel>().is_err());
    }

    #[test]
    fn with_level_overrides_and_restores() {
        let base = configured_level();
        let inside = with_level(AuditLevel::Strict, configured_level);
        assert_eq!(inside, AuditLevel::Strict);
        assert_eq!(configured_level(), base);
    }

    #[test]
    fn healthy_cells_pass_strict() {
        let mut a = Auditor::strict("t");
        a.decomposition("bench/A", &healthy_decomposition());
        a.traffic_ratio("bench @ 1KB", 0.51);
        a.inefficiency("bench @ 1KB", 3.4);
        a.mtc_bound("bench @ 1KB", 100, 340);
        assert!(a.violations().is_empty());
        a.finish().expect("healthy");
    }

    #[test]
    fn strict_mode_fails_with_named_cell() {
        let mut a = Auditor::strict("table8");
        a.inefficiency("compress @ 16KB", 0.7);
        let err = a.finish().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("table8"), "{msg}");
        assert!(msg.contains("compress @ 16KB"), "{msg}");
        assert!(msg.contains("inefficiency"), "{msg}");
    }

    #[test]
    fn warn_mode_records_but_does_not_fail() {
        let mut a = Auditor::at("fig3", AuditLevel::Warn);
        let mut bad = healthy_decomposition();
        bad.t_i = 999; // T_I > T
        a.decomposition("swm/F", &bad);
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].invariant, "time-order");
        a.finish().expect("warn never fails the run");
    }

    #[test]
    fn off_mode_checks_nothing() {
        let mut a = Auditor::at("fig3", AuditLevel::Off);
        a.inefficiency("x", f64::NAN);
        a.traffic_ratio("x", -3.0);
        assert_eq!(a.checks(), 0);
        assert!(a.violations().is_empty());
        a.finish().expect("off");
    }

    #[test]
    fn broken_identities_are_each_caught() {
        let mut a = Auditor::strict("t");
        let mut d = healthy_decomposition();
        d.f_b = 0.9; // closure broken
        a.decomposition("c", &d);
        assert!(a
            .violations()
            .iter()
            .any(|v| v.invariant == "fraction-closure"));
        let mut a = Auditor::strict("t");
        a.mtc_bound("c", 500, 400);
        assert_eq!(a.violations().len(), 1);
        let mut a = Auditor::strict("t");
        a.traffic_ratio("c", 0.0);
        a.traffic_ratio("c", f64::INFINITY);
        assert_eq!(a.violations().len(), 2);
    }

    #[test]
    fn analytic_bound_checks_distance() {
        let mut a = Auditor::strict("fig3");
        a.analytic_bound("compress/A", "ecm-1", 100.0, 20.0, 110.0);
        assert!(a.violations().is_empty());
        a.analytic_bound("compress/B", "ecm-1", 100.0, 5.0, 110.0);
        a.analytic_bound("compress/C", "ecm-1", f64::NAN, 5.0, 110.0);
        assert_eq!(a.violations().len(), 2);
        assert_eq!(a.violations()[0].invariant, "analytic-bound");
    }

    #[test]
    fn summary_accumulates() {
        let before = summary();
        let mut a = Auditor::strict("sum");
        a.positive("c", "x", 1.0);
        a.positive("c", "y", -1.0);
        let _ = a.finish();
        let after = summary();
        assert!(after.checks >= before.checks + 2);
        assert!(after.violations > before.violations);
        assert!(after.targets > before.targets);
    }
}
