//! Figure 4: total traffic vs. cache (and MTC) size, log-log, for
//! Compress, Eqntott, and Swm — 4-way set-associative caches with block
//! sizes 4 B – 128 B, plus the write-allocate and write-validate MTCs.

use crate::audit::Auditor;
use crate::error::{collect_jobs, MembwError};
use crate::report::{size_label, Table};
use membw_cache::{Associativity, Cache, CacheConfig};
use membw_mtc::{min_sweep, MinCache, MinConfig, MinWritePolicy};
use membw_runner::Runner;
use membw_sweep::{sweep_lru, SweepMode, SweepSpec};
use membw_trace::{MemRef, Workload};
use membw_workloads::{suite92, Scale};
use serde::{Deserialize, Serialize};

/// The block sizes of the figure's six cache curves.
pub const BLOCK_SIZES: [u64; 6] = [4, 8, 16, 32, 64, 128];

/// One curve: traffic (bytes) per cache size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Curve {
    /// Curve label (`"32B blocks"`, `"MTC write-validate"`, …).
    pub label: String,
    /// `(capacity_bytes, traffic_bytes)` points; capacities where the
    /// geometry is invalid (block × 4 ways > size) are omitted.
    pub points: Vec<(u64, u64)>,
}

/// One benchmark's panel of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Panel {
    /// Benchmark name.
    pub name: String,
    /// Six cache curves plus the two MTC curves.
    pub curves: Vec<Curve>,
}

/// Cache sizes swept (64 B – 4 MB, the figure's x-axis).
pub fn sizes() -> Vec<u64> {
    (6..=22).map(|p| 1u64 << p).collect()
}

fn cache_traffic(refs: &[MemRef], size: u64, block: u64) -> Option<u64> {
    let cfg = match CacheConfig::builder(size, block)
        .associativity(Associativity::Ways(4))
        .build()
    {
        Ok(cfg) => cfg,
        // Block × 4 ways exceeding the size is the figure's expected
        // reason to omit a point; anything else is a real bug and must
        // not be silently dropped as "invalid geometry".
        Err(e) if e.is_geometry_limit() => return None,
        Err(e) => {
            eprintln!("fig4: unexpected config error at size {size}, block {block}: {e}");
            return None;
        }
    };
    let mut c = Cache::new(cfg);
    for &r in refs {
        c.access(r);
    }
    Some(c.flush().traffic_below())
}

/// The `(capacity, traffic)` points of one curve, by either engine.
/// Both paths derive every byte count from the same integer counters,
/// so the results are identical (the stack engine is validated against
/// direct simulation cell by cell).
fn curve_points(refs: &[MemRef], spec: &CurveSpec, mode: SweepMode) -> Vec<(u64, u64)> {
    let caps = sizes();
    match (*spec, mode) {
        (CurveSpec::Cache { block }, SweepMode::Direct) => caps
            .into_iter()
            .filter_map(|s| cache_traffic(refs, s, block).map(|t| (s, t)))
            .collect(),
        (CurveSpec::Cache { block }, SweepMode::Stack) => {
            let sweep = SweepSpec::new(block).associativity(Associativity::Ways(4));
            sweep_lru(&sweep, &caps, refs)
                .into_iter()
                .zip(caps)
                .filter_map(|(stats, s)| stats.map(|st| (s, st.traffic_below())))
                .collect()
        }
        (CurveSpec::Mtc { write }, SweepMode::Direct) => caps
            .into_iter()
            .map(|s| {
                let cfg = MinConfig::new(s, 4, write, true);
                (s, MinCache::simulate(&cfg, refs).traffic_below())
            })
            .collect(),
        (CurveSpec::Mtc { write }, SweepMode::Stack) => {
            let cfgs: Vec<MinConfig> = caps
                .iter()
                .map(|&s| MinConfig::new(s, 4, write, true))
                .collect();
            min_sweep(&cfgs, refs)
                .into_iter()
                .zip(caps)
                .map(|(st, s)| (s, st.traffic_below()))
                .collect()
        }
    }
}

/// The curves of one Figure 4 panel: six cache block sizes, then the
/// two MTC write policies.
#[derive(Debug, Clone, Copy)]
enum CurveSpec {
    Cache { block: u64 },
    Mtc { write: MinWritePolicy },
}

impl CurveSpec {
    fn all() -> Vec<CurveSpec> {
        let mut v: Vec<CurveSpec> = BLOCK_SIZES
            .iter()
            .map(|&block| CurveSpec::Cache { block })
            .collect();
        v.push(CurveSpec::Mtc {
            write: MinWritePolicy::Allocate,
        });
        v.push(CurveSpec::Mtc {
            write: MinWritePolicy::Validate,
        });
        v
    }

    fn label(&self) -> String {
        match self {
            CurveSpec::Cache { block } => format!("{block}B blocks"),
            CurveSpec::Mtc {
                write: MinWritePolicy::Allocate,
            } => "MTC write-allocate".to_string(),
            CurveSpec::Mtc {
                write: MinWritePolicy::Validate,
            } => "MTC write-validate".to_string(),
        }
    }
}

/// Regenerate Figure 4 at `scale` for the three panel benchmarks, with
/// the default sweep engine ([`SweepMode::Stack`]).
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any (panel, curve) job ultimately
/// failed (after the configured retry budget).
pub fn run(scale: Scale) -> Result<(Vec<Fig4Panel>, Vec<Table>), MembwError> {
    run_with(scale, SweepMode::default())
}

/// Regenerate Figure 4 at `scale` with an explicit sweep engine.
///
/// One run-engine job per (panel, curve) — 3 × 8 — each regenerating
/// the panel's trace; curves merge back panel-major in the figure's
/// fixed curve order. Jobs are fault-isolated and checkpointed under
/// the batch label `fig4` (the key encodes the sweep mode). Under
/// [`SweepMode::Stack`] each cache curve is one [`sweep_lru`] pass and
/// each MTC curve one [`min_sweep`] pass instead of seventeen
/// independent simulations; stdout and the returned values are
/// byte-identical between modes.
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any (panel, curve) job ultimately
/// failed (after the configured retry budget).
pub fn run_with(scale: Scale, mode: SweepMode) -> Result<(Vec<Fig4Panel>, Vec<Table>), MembwError> {
    let suite = suite92(scale);
    let panel_names = ["compress", "eqntott", "swm"];
    let curve_specs = CurveSpec::all();
    let n_c = curve_specs.len();
    let key = format!("v2/fig4/{scale:?}/{mode}/{}x{}", panel_names.len(), n_c);
    let raw = Runner::from_env().checkpointed("fig4", &key, panel_names.len() * n_c, |k| {
        let name = panel_names[k / n_c];
        let spec = &curve_specs[k % n_c];
        let b = suite
            .iter()
            .find(|b| b.name() == name)
            .expect("panel benchmark exists in SPEC92 suite");
        let refs = b.replayable().collect_mem_refs();
        Curve {
            label: spec.label(),
            points: curve_points(&refs, spec, mode),
        }
    });
    let all_curves: Vec<Curve> = collect_jobs("fig4", raw, |k| {
        format!("{}/{}", panel_names[k / n_c], curve_specs[k % n_c].label())
    })?;

    let mut audit = Auditor::new("fig4");
    if mode == SweepMode::Stack && membw_sweep::verify_requested() {
        for (k, curve) in all_curves.iter().enumerate() {
            let name = panel_names[k / n_c];
            let spec = &curve_specs[k % n_c];
            let b = suite
                .iter()
                .find(|b| b.name() == name)
                .expect("panel benchmark exists in SPEC92 suite");
            let refs = b.replayable().collect_mem_refs();
            let direct = curve_points(&refs, spec, SweepMode::Direct);
            audit.sweep_exact(
                &format!("{name}/{}", curve.label),
                direct == curve.points,
                || {
                    let diff = direct
                        .iter()
                        .zip(&curve.points)
                        .find(|(d, s)| d != s)
                        .map(|(d, s)| format!("direct {d:?} vs swept {s:?}"))
                        .unwrap_or_else(|| {
                            format!(
                                "{} direct vs {} swept points",
                                direct.len(),
                                curve.points.len()
                            )
                        });
                    format!("stack sweep diverged from direct simulation: {diff}")
                },
            );
        }
    }
    let mut panels = Vec::new();
    let mut tables = Vec::new();
    for (pi, name) in panel_names.iter().enumerate() {
        let curves: Vec<Curve> =
            all_curves[pi * curve_specs.len()..(pi + 1) * curve_specs.len()].to_vec();

        // §5: at every shared capacity, the write-validate MTC moves no
        // more bytes than any real cache curve.
        if let Some(wv) = curves.iter().find(|c| c.label == "MTC write-validate") {
            for c in curves.iter().filter(|c| c.label.ends_with("blocks")) {
                for &(s, t) in &c.points {
                    if let Some(&(_, m)) = wv.points.iter().find(|(cap, _)| *cap == s) {
                        audit.mtc_bound(&format!("{name}/{} @ {}", c.label, size_label(s)), m, t);
                    }
                }
            }
        }

        let mut table = Table::new(
            format!("Figure 4 ({name}): traffic in KB vs cache/MTC size"),
            {
                let mut h = vec!["Size".to_string()];
                h.extend(curves.iter().map(|c| c.label.clone()));
                h
            },
        );
        for s in sizes() {
            let mut cells = vec![size_label(s)];
            for c in &curves {
                let v = c
                    .points
                    .iter()
                    .find(|(cap, _)| *cap == s)
                    .map(|(_, t)| format!("{:.0}", *t as f64 / 1024.0))
                    .unwrap_or_else(|| "-".to_string());
                cells.push(v);
            }
            table.row(cells);
        }
        tables.push(table);
        panels.push(Fig4Panel {
            name: name.to_string(),
            curves,
        });
    }
    // Under `--analytic assist`, check every simulated traffic point
    // against the ECM prediction and its bound (serial section;
    // checkpoint keys and stdout are untouched).
    if crate::fastpath::assist_enabled() {
        crate::fastpath::assist_fig4(&mut audit, &suite, &panels);
    }
    audit.finish()?;
    Ok((panels, tables))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtc_curves_lower_bound_everything() {
        let (panels, _) = run(Scale::Test).expect("no faults injected");
        assert_eq!(panels.len(), 3);
        for p in &panels {
            let wv = p
                .curves
                .iter()
                .find(|c| c.label == "MTC write-validate")
                .expect("WV curve");
            for c in p.curves.iter().filter(|c| c.label.ends_with("blocks")) {
                for &(s, t) in &c.points {
                    let m = wv
                        .points
                        .iter()
                        .find(|(cap, _)| *cap == s)
                        .expect("same sizes");
                    assert!(
                        m.1 <= t,
                        "{}: MTC above a cache at {s} ({} vs {t})",
                        p.name,
                        m.1
                    );
                }
            }
        }
    }

    #[test]
    fn compress_traffic_rises_with_block_size() {
        // The paper: "Compress has little spatial locality... any increase
        // in block size causes a corresponding increase in traffic."
        let (panels, _) = run(Scale::Test).expect("no faults injected");
        let compress = &panels[0];
        assert_eq!(compress.name, "compress");
        let at = |label: &str, size: u64| {
            compress
                .curves
                .iter()
                .find(|c| c.label == label)
                .and_then(|c| c.points.iter().find(|(s, _)| *s == size))
                .map(|(_, t)| *t)
        };
        let size = 16 * 1024;
        let t4 = at("4B blocks", size).expect("point");
        let t128 = at("128B blocks", size).expect("point");
        assert!(t128 > 2 * t4, "128B should waste traffic: {t128} vs {t4}");
    }

    #[test]
    fn stack_and_direct_modes_agree() {
        let (stack, _) = run_with(Scale::Test, SweepMode::Stack).expect("no faults injected");
        let (direct, _) = run_with(Scale::Test, SweepMode::Direct).expect("no faults injected");
        assert_eq!(stack.len(), direct.len());
        for (a, b) in stack.iter().zip(&direct) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.curves.len(), b.curves.len());
            for (ca, cb) in a.curves.iter().zip(&b.curves) {
                assert_eq!(ca.label, cb.label);
                assert_eq!(ca.points, cb.points, "{}/{}", a.name, ca.label);
            }
        }
    }

    #[test]
    fn traffic_is_monotone_nonincreasing_for_mtc() {
        let (panels, _) = run(Scale::Test).expect("no faults injected");
        for p in &panels {
            let wv = p
                .curves
                .iter()
                .find(|c| c.label.contains("validate"))
                .unwrap();
            for w in wv.points.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 64,
                    "{}: MTC traffic must fall with capacity",
                    p.name
                );
            }
        }
    }
}
