//! Figure 3 + Table 6: execution-time decomposition across experiments
//! A–F for both benchmark suites.

use crate::audit::Auditor;
use crate::error::{collect_jobs, MembwError};
use crate::report::{count_uops, Table};
use membw_runner::Runner;
use membw_sim::{decompose, Decomposition, Experiment, MachineSpec};
use membw_workloads::{suite92, suite95, Scale, Suite};
use serde::{Deserialize, Serialize};

/// One bar of Figure 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Cell {
    /// Benchmark name.
    pub benchmark: String,
    /// Suite the benchmark belongs to.
    pub suite_label: String,
    /// Experiment label (`A`–`F`).
    pub experiment: String,
    /// The three-run decomposition.
    pub decomposition: Decomposition,
    /// Execution time in seconds-equivalent units (cycles / MHz),
    /// normalized to experiment A's `T_P` for the same benchmark —
    /// Figure 3's y-axis.
    pub normalized_time: f64,
}

/// The whole figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// All bars.
    pub cells: Vec<Fig3Cell>,
}

impl Fig3Result {
    /// Find one cell.
    pub fn cell(&self, benchmark: &str, experiment: &str) -> Option<&Fig3Cell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.experiment == experiment)
    }

    /// Table 6's comparison rows: `(benchmark, f_L(A), f_B(A), f_L(F),
    /// f_B(F))` as percentages.
    pub fn table6_rows(&self) -> Vec<(String, f64, f64, f64, f64)> {
        let mut names: Vec<String> = self
            .cells
            .iter()
            .map(|c| c.benchmark.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>();
        names.sort();
        names
            .into_iter()
            .filter_map(|n| {
                let a = self.cell(&n, "A")?;
                let f = self.cell(&n, "F")?;
                Some((
                    n,
                    a.decomposition.f_l * 100.0,
                    a.decomposition.f_b * 100.0,
                    f.decomposition.f_l * 100.0,
                    f.decomposition.f_b * 100.0,
                ))
            })
            .collect()
    }
}

/// Run the decomposition for one suite at `scale` over `experiments`.
///
/// Fans the full (benchmark × experiment) matrix out on the run engine
/// — each job replays its benchmark's recorded trace (recorded once per
/// process via the trace cache; regenerated when caching is off) and
/// owns its three simulations — then normalizes and assembles in
/// canonical order, so the result is identical at any `--jobs` setting
/// and with the cache on or off. Jobs are fault-isolated and
/// checkpointed under the batch label `fig3/<suite>`.
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any matrix cell ultimately failed
/// (after the configured retry budget); healthy cells stay archived in
/// the checkpoint for a `--resume` rerun. Returns
/// [`MembwError::InvariantViolation`] under `--audit strict` if any
/// cell breaks the Eq. 1–4 identities.
pub fn run_suite(
    suite: Suite,
    scale: Scale,
    experiments: &[Experiment],
) -> Result<Fig3Result, MembwError> {
    let benchmarks = match suite {
        Suite::Spec92 => suite92(scale),
        Suite::Spec95 => suite95(scale),
    };
    let suite_label = match suite {
        Suite::Spec92 => "SPEC92",
        Suite::Spec95 => "SPEC95",
    };
    let spec_for = |e: Experiment| match suite {
        Suite::Spec92 => MachineSpec::spec92(e),
        Suite::Spec95 => MachineSpec::spec95(e),
    };

    if experiments.is_empty() {
        return Ok(Fig3Result { cells: Vec::new() });
    }

    // One job per (benchmark, experiment), benchmark-major.
    let n_e = experiments.len();
    let label = format!("fig3/{suite_label}");
    let exp_labels: Vec<&str> = experiments.iter().map(Experiment::label).collect();
    let key = format!(
        "v1/fig3/{suite_label}/{scale:?}/{}x[{}]",
        benchmarks.len(),
        exp_labels.join(",")
    );
    let raw = Runner::from_env().checkpointed(&label, &key, benchmarks.len() * n_e, |k| {
        let b = &benchmarks[k / n_e];
        let e = experiments[k % n_e];
        let spec = spec_for(e);
        // Record once, replay for every (experiment × memory-mode) run
        // of this benchmark — and across runner threads.
        let d = decompose(&b.replayable(), &spec);
        count_uops(d.uops);
        let seconds = d.t as f64 / spec.cpu_mhz as f64;
        let tp_seconds = d.t_p as f64 / spec.cpu_mhz as f64;
        (d, seconds, tp_seconds)
    });
    let raw: Vec<(Decomposition, f64, f64)> = collect_jobs(&label, raw, |k| {
        format!(
            "{}/{}",
            benchmarks[k / n_e].name(),
            experiments[k % n_e].label()
        )
    })?;

    // Serial normalization pass: experiment A supplies each benchmark's
    // T_P baseline (Figure 3's y-axis is normalized to A's T_P). When A
    // is not among the requested experiments, fall back — loudly — to
    // the first listed one.
    let base_index = match experiments.iter().position(|&e| e == Experiment::A) {
        Some(ai) => ai,
        None => {
            eprintln!(
                "warning: fig3/{suite_label}: experiment A absent from {exp_labels:?}; \
                 normalizing to experiment {} T_P instead",
                exp_labels[0]
            );
            0
        }
    };
    let mut cells = Vec::new();
    for (bi, b) in benchmarks.iter().enumerate() {
        let base_seconds = raw[bi * n_e + base_index].2;
        for (ei, e) in experiments.iter().enumerate() {
            let (d, seconds, _) = raw[bi * n_e + ei];
            cells.push(Fig3Cell {
                benchmark: b.name().to_string(),
                suite_label: suite_label.to_string(),
                // Experiment labels are &'static str: one allocation
                // per cell, no intermediate formatting.
                experiment: e.label().to_string(),
                decomposition: d,
                normalized_time: seconds / base_seconds,
            });
        }
    }
    // Compare by borrowed keys: no per-comparison String clones.
    cells.sort_by(|x, y| {
        (x.benchmark.as_str(), x.experiment.as_str())
            .cmp(&(y.benchmark.as_str(), y.experiment.as_str()))
    });

    let mut audit = Auditor::new(label);
    for c in &cells {
        let cell = format!("{}/{}", c.benchmark, c.experiment);
        audit.decomposition(&cell, &c.decomposition);
        audit.positive(&cell, "normalized time", c.normalized_time);
    }
    // Under `--analytic assist`, replay every simulated cell through
    // the ECM predictor and assert the prediction's error bound. Runs
    // in this serial post-collect section so checkpoint keys and
    // stdout are untouched.
    if crate::fastpath::assist_enabled() {
        crate::fastpath::assist_fig3(&mut audit, suite, &benchmarks, &cells);
    }
    audit.finish()?;
    Ok(Fig3Result { cells })
}

/// Render a Figure 3 panel as a table (one row per benchmark ×
/// experiment).
pub fn render(result: &Fig3Result, title: &str) -> Table {
    let mut table = Table::new(
        title,
        ["Benchmark", "Exp", "Norm. time", "f_P", "f_L", "f_B", "IPC"]
            .map(String::from)
            .to_vec(),
    );
    for c in &result.cells {
        table.row(vec![
            c.benchmark.clone(),
            c.experiment.clone(),
            format!("{:.2}", c.normalized_time),
            format!("{:.2}", c.decomposition.f_p),
            format!("{:.2}", c.decomposition.f_l),
            format!("{:.2}", c.decomposition.f_b),
            format!("{:.2}", c.decomposition.ipc()),
        ]);
    }
    table
}

/// Render Table 6 from a Figure 3 result.
pub fn render_table6(result: &Fig3Result) -> Table {
    let mut table = Table::new(
        "Table 6: latency vs bandwidth stalls, experiments A and F (percent of execution time)",
        ["Benchmark", "A: f_L%", "A: f_B%", "F: f_L%", "F: f_B%"]
            .map(String::from)
            .to_vec(),
    );
    for (name, fl_a, fb_a, fl_f, fb_f) in result.table6_rows() {
        table.row(vec![
            name,
            format!("{fl_a:.1}"),
            format!("{fb_a:.1}"),
            format!("{fl_f:.1}"),
            format!("{fb_f:.1}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_fractions_are_valid_everywhere() {
        let r = run_suite(Suite::Spec92, Scale::Test, &[Experiment::A, Experiment::F])
            .expect("no faults injected");
        assert_eq!(r.cells.len(), 14, "7 benchmarks x 2 experiments");
        for c in &r.cells {
            let d = &c.decomposition;
            assert!(
                (d.f_p + d.f_l + d.f_b - 1.0).abs() < 1e-9,
                "{}",
                c.benchmark
            );
            assert!(d.f_p > 0.0);
            assert!(c.normalized_time > 0.0);
        }
    }

    #[test]
    fn bandwidth_stalls_grow_from_a_to_f_on_average() {
        // The paper's thesis: latency tolerance exposes bandwidth stalls.
        let r = run_suite(Suite::Spec92, Scale::Test, &[Experiment::A, Experiment::F])
            .expect("no faults injected");
        let t6 = r.table6_rows();
        assert!(!t6.is_empty());
        let mean_fb_a: f64 = t6.iter().map(|r| r.2).sum::<f64>() / t6.len() as f64;
        let mean_fb_f: f64 = t6.iter().map(|r| r.4).sum::<f64>() / t6.len() as f64;
        assert!(
            mean_fb_f > mean_fb_a,
            "f_B should grow: A {mean_fb_a:.1}% -> F {mean_fb_f:.1}%"
        );
    }

    #[test]
    fn baseline_is_experiment_a_regardless_of_order() {
        // With the experiment list reordered so A is not first, every
        // A cell must still be normalized against its own T_P — i.e.
        // its normalized_time matches its decomposition's.
        let r = run_suite(Suite::Spec92, Scale::Test, &[Experiment::F, Experiment::A])
            .expect("no faults injected");
        for c in r.cells.iter().filter(|c| c.experiment == "A") {
            assert!(
                (c.normalized_time - c.decomposition.normalized_time()).abs() < 1e-9,
                "{}: baseline must come from experiment A, not the first listed",
                c.benchmark
            );
        }
        // And F is normalized against A's T_P, matching the canonical
        // ordering's result.
        let canonical = run_suite(Suite::Spec92, Scale::Test, &[Experiment::A, Experiment::F])
            .expect("no faults injected");
        for (x, y) in r.cells.iter().zip(canonical.cells.iter()) {
            assert_eq!(x.benchmark, y.benchmark);
            assert_eq!(x.experiment, y.experiment);
            assert!((x.normalized_time - y.normalized_time).abs() < 1e-12);
        }
    }

    #[test]
    fn tables_render() {
        let r =
            run_suite(Suite::Spec92, Scale::Test, &[Experiment::A]).expect("no faults injected");
        let t = render(&r, "Figure 3 (SPEC92)");
        assert_eq!(t.num_rows(), 7);
        let t6 = render_table6(&r);
        // Table 6 needs both A and F; with only A it is empty.
        assert_eq!(t6.num_rows(), 0);
    }
}
