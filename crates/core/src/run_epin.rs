//! Effective pin bandwidth per benchmark (Eq. 5, §4): the two-level
//! traffic-ratio product applied to a real package budget.
//!
//! The paper computes `E_pin = B_pin / (R₁ · R₂)` for on-chip hierarchies;
//! here we run each SPEC92 benchmark through the experiment-A cache pair
//! (treating both levels as on-chip, as the paper's future-processor
//! discussion assumes) and report what an 800 MB/s package delivers
//! *effectively*, plus the Eq. 7 upper bound using the same-size MTC.

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_analytic::{effective_pin_bandwidth, upper_bound_epin};
use membw_cache::{CacheConfig, Hierarchy};
use membw_mtc::{MinCache, MinConfig};
use membw_trace::{MemRef, Workload};
use membw_workloads::{suite92, Scale};
use serde::{Deserialize, Serialize};

/// One benchmark's effective-bandwidth accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpinRow {
    /// Benchmark name.
    pub name: String,
    /// L1 traffic ratio `R₁`.
    pub r1: f64,
    /// L2 traffic ratio `R₂`.
    pub r2: f64,
    /// Effective pin bandwidth in MB/s for an 800 MB/s package (Eq. 5).
    pub epin_mb_s: f64,
    /// Traffic inefficiency of the combined hierarchy vs. an MTC of the
    /// total on-chip capacity.
    pub g: f64,
    /// Eq. 7 upper bound in MB/s.
    pub oe_pin_mb_s: f64,
}

/// Package bandwidth assumed (MB/s) — a 1996-class part.
pub const B_PIN: f64 = 800.0;

/// Run the Eq. 5 / Eq. 7 accounting over the SPEC92 suite at `scale`.
///
/// Uses a 64 KiB/32 B L1 and 1 MiB/64 B 4-way L2 (the Table 4 pair with
/// the L1 sized to its on-chip era).
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// any row breaks the Eq. 5–7 identities.
pub fn run(scale: Scale) -> Result<(Vec<EpinRow>, Table), MembwError> {
    let l1 = CacheConfig::builder(64 * 1024, 32).build().expect("valid");
    let l2 = CacheConfig::builder(1024 * 1024, 64)
        .associativity(membw_cache::Associativity::Ways(4))
        .build()
        .expect("valid");
    let total_capacity = l1.size_bytes() + l2.size_bytes();
    // MTC capacities must be powers of two; use the dominant L2 size.
    let mtc_capacity = (total_capacity as f64).log2().floor().exp2() as u64;

    let mut rows = Vec::new();
    for b in suite92(scale) {
        let refs: Vec<MemRef> = b.replayable().collect_mem_refs();
        let mut h = Hierarchy::new(vec![l1, l2]);
        for &r in &refs {
            h.access(r);
        }
        h.flush();
        let ratios = h.traffic_ratios();
        let (r1, r2) = (ratios[0].max(1e-9), ratios[1].max(1e-9));
        let epin = effective_pin_bandwidth(B_PIN, &[r1, r2]);
        let mtc = MinCache::simulate(&MinConfig::mtc(mtc_capacity), &refs);
        let g = if mtc.traffic_below() == 0 {
            1.0
        } else {
            (h.memory_traffic() as f64 / mtc.traffic_below() as f64).max(1.0)
        };
        // Fold the combined-hierarchy inefficiency into a single level
        // for the bound (G of the product, not per level).
        let oe = upper_bound_epin(B_PIN, &[r1 * r2], &[g]);
        rows.push(EpinRow {
            name: b.name().to_string(),
            r1,
            r2,
            epin_mb_s: epin,
            g,
            oe_pin_mb_s: oe,
        });
    }

    let mut audit = Auditor::new("epin");
    for r in &rows {
        audit.traffic_ratio(&format!("{} R1", r.name), r.r1);
        audit.traffic_ratio(&format!("{} R2", r.name), r.r2);
        audit.inefficiency(&r.name, r.g);
        audit.positive(&r.name, "E_pin (Eq. 5)", r.epin_mb_s);
        audit.positive(&r.name, "OE_pin (Eq. 7)", r.oe_pin_mb_s);
    }
    audit.finish()?;

    let mut table = Table::new(
        format!("Effective pin bandwidth (Eq. 5/7), B_pin = {B_PIN} MB/s, 64KB L1 + 1MB L2"),
        ["Benchmark", "R1", "R2", "E_pin MB/s", "G", "OE_pin MB/s"]
            .map(String::from)
            .to_vec(),
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            format!("{:.2}", r.r1),
            format!("{:.2}", r.r2),
            format!("{:.0}", r.epin_mb_s),
            format!("{:.1}", r.g),
            format!("{:.0}", r.oe_pin_mb_s),
        ]);
    }
    Ok((rows, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epin_accounting_is_consistent() {
        let (rows, table) = run(Scale::Test).expect("audit passes");
        assert_eq!(table.num_rows(), 7);
        for r in &rows {
            // Eq. 5 arithmetic must hold.
            let expect = B_PIN / (r.r1 * r.r2);
            assert!((r.epin_mb_s - expect).abs() < 1e-6, "{}", r.name);
            // The bound is never below the achieved value.
            assert!(
                r.oe_pin_mb_s >= r.epin_mb_s - 1e-6,
                "{}: OE {} < E {}",
                r.name,
                r.oe_pin_mb_s,
                r.epin_mb_s
            );
            assert!(r.g >= 1.0);
        }
    }

    #[test]
    fn filtering_workloads_see_amplified_bandwidth() {
        let (rows, _) = run(Scale::Test).expect("audit passes");
        // At least one cache-friendly benchmark must see E_pin well above
        // the raw package (espresso's tiny working set filters ~all
        // traffic).
        assert!(
            rows.iter().any(|r| r.epin_mb_s > 2.0 * B_PIN),
            "some benchmark should amplify effective bandwidth"
        );
    }
}
