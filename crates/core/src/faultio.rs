//! The deterministic fault-injecting I/O layer, re-exported at the
//! `membw-core` level.
//!
//! The implementation lives in [`membw_runner::faultio`] because the
//! dependency arrow points the other way: the runner's persistence
//! primitives (`persist`, `checkpoint`) and the trace crate's artifact
//! writers all sit *below* core and must themselves write through the
//! facade. Downstream code that depends on core (the serve daemon, the
//! bench binaries, integration tests) reaches it as
//! `membw_core::faultio`.

pub use membw_runner::faultio::*;
