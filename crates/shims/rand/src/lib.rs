//! Vendored stand-in for the `rand` crate.
//!
//! Implements the slice of `rand` 0.8's API this workspace uses —
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! (inclusive) integer ranges, and [`Rng::gen_bool`] — on top of a
//! xoshiro256++ generator seeded through SplitMix64. Streams are
//! deterministic per seed (the property every caller in this workspace
//! relies on) but intentionally *not* bit-compatible with upstream
//! `rand`'s `SmallRng`, which never promised cross-version stability
//! either.

/// Core RNG: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a standard sampling distribution (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Sample uniformly.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, n)` without modulo bias (Lemire's method is
/// overkill here; rejection sampling keeps it simple and exact).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n) - 1; // largest multiple of n, minus 1
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for ::std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for ::std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 — small,
    /// fast, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never needs a cryptographic generator, so
    /// the "standard" RNG shares the small one's engine.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
