//! Vendored stand-in for `serde_json`: renders the [`serde`] shim's
//! [`serde::json::Value`] tree as JSON text.
//!
//! Output follows `serde_json`'s conventions so archived results stay
//! familiar: 2-space pretty indentation, `": "` separators, floats
//! always carrying a fractional part (`1.0`, not `1`), and non-finite
//! floats rendered as `null`. Rendering is fully deterministic — object
//! keys keep struct-field declaration order — which the parallel run
//! engine relies on for byte-identical `--jobs 1` / `--jobs N` output.

use serde::json::Value;
use serde::Serialize;

/// Serialization error.
///
/// The vendored pipeline is infallible (no I/O, no recursion limits the
/// workspace can hit), so this exists only to keep `serde_json`'s
/// `Result` signatures; it is never actually returned.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors `serde_json`'s signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors `serde_json`'s signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => out.push_str(&format_float(*x)),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), items.len(), indent, depth, ('[', ']'), |out, item, ind, d| {
            write_value(out, item, ind, d);
        }),
        Value::Object(entries) => write_seq(out, entries.iter(), entries.len(), indent, depth, ('{', '}'), |out, (k, val), ind, d| {
            write_string(out, k);
            out.push(':');
            if ind.is_some() {
                out.push(' ');
            }
            write_value(out, val, ind, d);
        }),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) where
    I: Iterator<Item = T>,
{
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest round-tripping decimal, always with a fractional part or
/// exponent (`1.0`, not `1`); non-finite values become `null`.
fn format_float(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json::Value;

    #[test]
    fn pretty_layout_matches_serde_json_conventions() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("compress".to_string())),
            (
                "ratios".to_string(),
                Value::Array(vec![Value::Float(1.0), Value::Null]),
            ),
        ]);
        struct W(Value);
        impl serde::Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&W(v)).unwrap();
        assert_eq!(
            s,
            "{\n  \"name\": \"compress\",\n  \"ratios\": [\n    1.0,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_a_fractional_part_and_nan_is_null() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(0.51), "0.51");
        assert_eq!(format_float(f64::NAN), "null");
        assert_eq!(format_float(f64::INFINITY), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}
