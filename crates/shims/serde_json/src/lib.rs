//! Vendored stand-in for `serde_json`: renders the [`serde`] shim's
//! [`serde::json::Value`] tree as JSON text, and parses that text back
//! ([`from_str`]) for the run engine's checkpoint/resume layer.
//!
//! Output follows `serde_json`'s conventions so archived results stay
//! familiar: 2-space pretty indentation, `": "` separators, floats
//! always carrying a fractional part (`1.0`, not `1`), and non-finite
//! floats rendered as `null`. Rendering is fully deterministic — object
//! keys keep struct-field declaration order — which the parallel run
//! engine relies on for byte-identical `--jobs 1` / `--jobs N` output.

use serde::json::Value;
use serde::{Deserialize, Serialize};

/// JSON error: serialization never fails in the vendored pipeline, so
/// every real instance comes from [`from_str`] (malformed text or a
/// shape mismatch against the target type).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn parse(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors `serde_json`'s signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors `serde_json`'s signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
///
/// The parser accepts exactly the dialect the serializer emits (plus
/// insignificant whitespace): numbers without a sign/fraction/exponent
/// parse as `UInt`, with a leading `-` only as `Int`, and anything with
/// a `.`/`e` as `Float` — mirroring [`serde::json::Value`]'s split so
/// round trips are lossless.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON (with a byte position) or when
/// the parsed tree does not match `T`'s shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error::parse(e.to_string()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::parse(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::parse(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::parse(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error::parse(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::parse(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::parse("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(format!("bad number {text:?} at byte {start}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::parse(format!("bad number {text:?} at byte {start}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::parse(format!("bad number {text:?} at byte {start}")))
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => out.push_str(&format_float(*x)),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, val), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) where
    I: Iterator<Item = T>,
{
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest round-tripping decimal, always with a fractional part or
/// exponent (`1.0`, not `1`); non-finite values become `null`.
fn format_float(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json::Value;

    #[test]
    fn pretty_layout_matches_serde_json_conventions() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("compress".to_string())),
            (
                "ratios".to_string(),
                Value::Array(vec![Value::Float(1.0), Value::Null]),
            ),
        ]);
        struct W(Value);
        impl serde::Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&W(v)).unwrap();
        assert_eq!(
            s,
            "{\n  \"name\": \"compress\",\n  \"ratios\": [\n    1.0,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_a_fractional_part_and_nan_is_null() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(0.51), "0.51");
        assert_eq!(format_float(f64::NAN), "null");
        assert_eq!(format_float(f64::INFINITY), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parser_round_trips_the_serializer_output() {
        let v = Value::Object(vec![
            (
                "name".to_string(),
                Value::Str("compress \"x\"\n".to_string()),
            ),
            ("count".to_string(), Value::UInt(u64::MAX)),
            ("delta".to_string(), Value::Int(-42)),
            (
                "ratios".to_string(),
                Value::Array(vec![Value::Float(0.51), Value::Null, Value::Bool(true)]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        struct W(Value);
        impl serde::Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl serde::Deserialize for W {
            fn from_value(v: &Value) -> Result<Self, serde::DeError> {
                Ok(W(v.clone()))
            }
        }
        for text in [
            to_string(&W(v.clone())).unwrap(),
            to_string_pretty(&W(v.clone())).unwrap(),
        ] {
            let back: W = from_str(&text).unwrap();
            assert_eq!(back.0, v);
        }
    }

    #[test]
    fn parser_preserves_float_precision() {
        struct F(f64);
        impl serde::Deserialize for F {
            fn from_value(v: &Value) -> Result<Self, serde::DeError> {
                serde::Deserialize::from_value(v).map(F)
            }
        }
        for x in [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 6.02e23, -1.5e-300] {
            let text = format_float(x);
            let F(back) = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        struct W;
        impl serde::Deserialize for W {
            fn from_value(_: &Value) -> Result<Self, serde::DeError> {
                Ok(W)
            }
        }
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "[1]]"] {
            assert!(from_str::<W>(bad).is_err(), "{bad:?} should fail");
        }
    }
}
