//! Vendored stand-in for the `criterion` crate.
//!
//! Implements the benchmarking surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! `sample_size`, [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — with a simple but honest
//! wall-clock measurement loop: a warm-up to size the batch, then
//! `sample_size` timed batches, reporting min/median/mean per
//! iteration and, when a [`Throughput`] is set, elements per second.
//! No statistics engine, plots, or saved baselines.
//!
//! Like real criterion, `--quick` (as a bench argument, i.e. after
//! `cargo bench -- --quick`) trades precision for speed: one timed
//! batch per bench with a much smaller batch target — CI smoke mode.

pub use std::hint::black_box;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// True when the bench binary was invoked with `--quick`.
fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--quick"))
}

/// Target time per measured batch.
fn batch_target() -> Duration {
    if quick_mode() {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(40)
    }
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.default_sample_size;
        run_bench(&id.into(), sample_size, None, f);
    }
}

/// Units of work per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.throughput, f);
    }

    /// Finish the group (reporting is incremental, so this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Iterations to run in the current timed batch.
    iters: u64,
    /// Wall time of the last batch.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let sample_size = if quick_mode() { 1 } else { sample_size };
    let batch_target = batch_target();
    // Warm-up: find an iteration count that fills the batch target.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut b);
        if b.elapsed >= batch_target || b.iters >= 1 << 20 {
            break;
        }
        let scale = if b.elapsed.is_zero() {
            16
        } else {
            (batch_target.as_secs_f64() / b.elapsed.as_secs_f64()).ceil() as u64
        };
        b.iters = (b.iters * scale.clamp(2, 16)).min(1 << 20);
    }
    let iters = b.iters;

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {} elem/s", si_rate(n as f64 / median)),
        Throughput::Bytes(n) => format!("  {}B/s", si_rate(n as f64 / median)),
    });
    println!(
        "bench: {name:<50} min {:>10}  median {:>10}  mean {:>10}{}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        rate.unwrap_or_default()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn si_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.0} ")
    }
}

/// Define a function running a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_are_sane() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 us");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
        assert!(si_rate(5e6).starts_with("5.00 M"));
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
