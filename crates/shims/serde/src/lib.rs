//! Vendored stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors the *small slice* of serde it
//! actually uses: a [`Serialize`] trait that lowers values into an
//! in-memory JSON tree ([`json::Value`]), plus `#[derive(Serialize,
//! Deserialize)]` (see the sibling `serde_derive` shim). The sibling
//! `serde_json` shim renders the tree.
//!
//! The data model intentionally mirrors serde's JSON mapping for the
//! types this workspace serializes:
//!
//! * structs -> objects with fields in declaration order
//! * unit enum variants -> their name as a string
//! * tuple enum variants -> `{ "Variant": value }` / `{ "Variant": [..] }`
//! * tuples and slices -> arrays; `Option` -> value or `null`
//! * non-finite floats -> `null` (as `serde_json` does)

/// Minimal JSON value tree.
pub mod json {
    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Unsigned integer.
        UInt(u64),
        /// Signed integer.
        Int(i64),
        /// Floating point number.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Array(Vec<Value>),
        /// Object; insertion order is preserved (struct field order).
        Object(Vec<(String, Value)>),
    }
}

use json::Value;

/// A type that can lower itself to a [`json::Value`].
///
/// This replaces serde's `Serialize`; derive it with
/// `#[derive(Serialize)]` (the vendored derive emits a field-by-field
/// [`Serialize::to_value`]).
pub trait Serialize {
    /// Lower `self` into a JSON tree.
    fn to_value(&self) -> Value;
}

/// Name-resolution stub for `#[derive(Deserialize)]` / `use
/// serde::Deserialize`. Nothing in this workspace deserializes, so the
/// trait carries no methods; the derive emits an empty impl.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u64::from(*self)) }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(i64::from(*self)) }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5u64.to_value(), Value::UInt(5));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_become_arrays() {
        assert_eq!(
            vec![1u64, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u64, Some(2.5f64)).to_value(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.5)])
        );
    }
}
