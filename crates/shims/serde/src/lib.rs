//! Vendored stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors the *small slice* of serde it
//! actually uses: a [`Serialize`] trait that lowers values into an
//! in-memory JSON tree ([`json::Value`]), plus `#[derive(Serialize,
//! Deserialize)]` (see the sibling `serde_derive` shim). The sibling
//! `serde_json` shim renders the tree.
//!
//! The data model intentionally mirrors serde's JSON mapping for the
//! types this workspace serializes:
//!
//! * structs -> objects with fields in declaration order
//! * unit enum variants -> their name as a string
//! * tuple enum variants -> `{ "Variant": value }` / `{ "Variant": [..] }`
//! * tuples and slices -> arrays; `Option` -> value or `null`
//! * non-finite floats -> `null` (as `serde_json` does)

/// Minimal JSON value tree.
pub mod json {
    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Unsigned integer.
        UInt(u64),
        /// Signed integer.
        Int(i64),
        /// Floating point number.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Array(Vec<Value>),
        /// Object; insertion order is preserved (struct field order).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Look up a key in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The array items, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// A one-word description of the variant, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::UInt(_) | Value::Int(_) => "integer",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }
}

use json::Value;

/// A type that can lower itself to a [`json::Value`].
///
/// This replaces serde's `Serialize`; derive it with
/// `#[derive(Serialize)]` (the vendored derive emits a field-by-field
/// [`Serialize::to_value`]).
pub trait Serialize {
    /// Lower `self` into a JSON tree.
    fn to_value(&self) -> Value;
}

/// Deserialization error: a human-readable description of the mismatch
/// (missing field, wrong variant, out-of-range number, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "wrong shape" error naming what was expected and what arrived.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can rebuild itself from a [`json::Value`].
///
/// This replaces serde's `Deserialize` (the checkpoint/resume layer of
/// the run engine reloads archived job results); derive it with
/// `#[derive(Deserialize)]` — the vendored derive emits a
/// field-by-field [`Deserialize::from_value`] mirroring the
/// [`Serialize`] mapping.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Extract and deserialize one named struct field (derive support).
///
/// # Errors
///
/// Returns [`DeError`] when the field is missing or mismatched.
pub fn __field<T: Deserialize>(v: &Value, field: &str, ty: &str) -> Result<T, DeError> {
    let fv = v
        .get(field)
        .ok_or_else(|| DeError(format!("{ty}: missing field `{field}`")))?;
    T::from_value(fv).map_err(|e| DeError(format!("{ty}.{field}: {e}")))
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// A raw `Value` serializes as itself — upstream serde_json's
// `Value: Serialize + Deserialize` equivalent, used by code that
// builds or inspects JSON trees directly (the serve result store).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u64::from(*self)) }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(i64::from(*self)) }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($n),+].len();
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("tuple array", v))?;
                if items.len() != LEN {
                    return Err(DeError(format!(
                        "expected {LEN}-tuple, got {} items",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Signed/unsigned cross-acceptance: the JSON parser classifies any
/// non-negative literal as `UInt`, so signed targets must accept both.
fn value_as_i64(v: &Value) -> Result<i64, DeError> {
    match v {
        Value::Int(n) => Ok(*n),
        Value::UInt(n) => {
            i64::try_from(*n).map_err(|_| DeError(format!("integer {n} out of i64 range")))
        }
        other => Err(DeError::expected("integer", other)),
    }
}

fn value_as_u64(v: &Value) -> Result<u64, DeError> {
    match v {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) => {
            u64::try_from(*n).map_err(|_| DeError(format!("integer {n} out of unsigned range")))
        }
        other => Err(DeError::expected("integer", other)),
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = value_as_u64(v)?;
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = value_as_i64(v)?;
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            // The serializer renders non-finite floats as `null`; map
            // them back to NaN so archives round-trip byte-identically.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected {N}-element array, got {len}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5u64.to_value(), Value::UInt(5));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_become_arrays() {
        assert_eq!(
            vec![1u64, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u64, Some(2.5f64)).to_value(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.5)])
        );
    }

    #[test]
    fn primitives_round_trip_through_from_value() {
        assert_eq!(u64::from_value(&5u64.to_value()), Ok(5));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(String::from_value(&"x".to_value()), Ok("x".to_string()));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            <(u64, Option<f64>)>::from_value(&(7u64, None::<f64>).to_value()),
            Ok((7, None))
        );
    }

    #[test]
    fn signed_unsigned_cross_acceptance() {
        // The parser yields UInt for non-negative literals; signed
        // targets must take them (and vice versa within range).
        assert_eq!(i64::from_value(&Value::UInt(9)), Ok(9));
        assert_eq!(u64::from_value(&Value::Int(9)), Ok(9));
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn non_finite_floats_round_trip_as_nan() {
        let v = f64::NAN.to_value();
        // Serializer renders non-finite as null downstream; from_value
        // maps null back to NaN for plain f64 targets.
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        assert!(f64::from_value(&v).unwrap().is_nan());
    }

    #[test]
    fn shape_mismatches_name_the_problem() {
        let e = Vec::<u64>::from_value(&Value::Bool(true)).unwrap_err();
        assert!(e.to_string().contains("expected array"));
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        let e = __field::<String>(&obj, "b", "Demo").unwrap_err();
        assert!(e.to_string().contains("missing field `b`"), "{e}");
    }
}
