//! Vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace actually uses, with zero dependencies (no
//! `syn`/`quote`; the input token stream is walked by hand and the
//! generated impl is emitted as source text):
//!
//! * structs with named fields -> JSON object in declaration order
//! * unit structs -> `null`
//! * enums with unit variants -> variant name as a string
//! * enums with tuple variants -> `{ "Variant": value }` (one field) or
//!   `{ "Variant": [..] }` (several)
//!
//! `#[derive(Deserialize)]` emits the exact inverse mapping
//! (`Deserialize::from_value`), which the run engine's checkpoint layer
//! uses to reload archived job results on `--resume`.
//!
//! Unsupported shapes (generics, struct variants, tuple structs) produce
//! a `compile_error!` naming the limitation, so a future change that
//! needs them fails loudly rather than serializing garbage.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => emit_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => emit_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    UnitStruct,
    /// `(variant name, tuple arity)`; arity 0 is a unit variant.
    Enum(Vec<(String, usize)>),
}

fn parse(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: Kind::Struct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                kind: Kind::UnitStruct,
            }),
            _ => Err(format!(
                "vendored serde_derive does not support tuple struct `{name}`"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("expected struct or enum, found `{other}`")),
    }
}

/// Advance past any number of `#[...]` attributes and a `pub` /
/// `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Skip a type (or any expression) until a `,` at zero angle-bracket
/// depth; leaves `i` *past* the comma (or at end of tokens).
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        skip_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                tuple_arity(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "vendored serde_derive does not support struct variant `{name}`"
                ));
            }
            _ => 0,
        };
        // Skip an optional `= discriminant`, then the separating comma.
        skip_until_comma(&tokens, &mut i);
        variants.push((name, arity));
    }
    Ok(variants)
}

/// Number of fields in a tuple-variant payload: top-level commas + 1
/// (ignoring a trailing comma).
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut fields = 1;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 && idx + 1 < tokens.len() => fields += 1,
                _ => {}
            }
        }
    }
    fields
}

fn emit_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::json::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::UnitStruct => "::serde::json::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::json::Value::Str(\
                         ::std::string::String::from({v:?})),"
                    ),
                    1 => format!(
                        "{name}::{v}(f0) => ::serde::json::Value::Object(::std::vec![(\
                         ::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::json::Value::Object(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::json::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}"
    )
}

/// Emit a `Deserialize::from_value` that inverts [`emit_serialize`]'s
/// mapping exactly: objects back into named-field structs, strings back
/// into unit variants, single-key objects back into tuple variants.
fn emit_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(v, {f:?}, {name:?})?"))
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Kind::UnitStruct => format!(
            "match v {{\n\
             ::serde::json::Value::Null => ::std::result::Result::Ok({name}),\n\
             other => ::std::result::Result::Err(::serde::DeError::expected({name:?}, other)),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tuple_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| match arity {
                    1 => format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(payload)?)),"
                    ),
                    n => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&items[{k}])?")
                            })
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                             let items = payload.as_array()\
                             .ok_or_else(|| ::serde::DeError::expected(\"variant payload array\", payload))?;\n\
                             if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"{name}::{v}: expected {n} fields, got {{}}\", items.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::json::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                 }},\n\
                 ::serde::json::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (variant, payload) = &entries[0];\n\
                 let _ = payload; // unused when the enum has no tuple variants\n\
                 match variant.as_str() {{\n\
                 {tuple}\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected({name:?}, other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tuple = tuple_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
