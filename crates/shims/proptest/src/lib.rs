//! Vendored stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest's DSL this workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`Strategy`] for integer ranges,
//! tuples, `prop::bool::ANY`, `prop::collection::vec`, and
//! `.prop_map(..)`, plus [`prop_assert!`]/[`prop_assert_eq!`].
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test name and case index), so failures reproduce across runs.
//! There is **no shrinking**: a failing case reports its inputs via the
//! panic message of the underlying `assert!`, which is enough for the
//! small strategies used here.

pub use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{SmallRng, Strategy};
        use rand::Rng;

        /// Generates `true`/`false` with equal probability.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut SmallRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{SmallRng, Strategy};
        use rand::Rng;

        /// Length bounds for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<::std::ops::Range<usize>> for SizeRange {
            fn from(r: ::std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        /// Strategy producing `Vec`s of `element` values with a length
        /// drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// FNV-style hash of the test name, for stable per-test seeds.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[doc(hidden)]
pub fn case_rng(name: &str, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(seed_for(name, case))
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests.
///
/// ```text
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}
