//! Sweep-mode selection and the runtime cross-check switch.

/// How a traffic suite computes its capacity axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// One-pass stack-distance sweep engine (default): one trace pass
    /// yields every capacity.
    #[default]
    Stack,
    /// Independent direct simulation per capacity (the pre-engine
    /// behavior, kept as the cross-check oracle).
    Direct,
}

impl SweepMode {
    /// Stable lowercase name, used in checkpoint keys and CLI output.
    pub fn key(self) -> &'static str {
        match self {
            SweepMode::Stack => "stack",
            SweepMode::Direct => "direct",
        }
    }

    /// Parse a `--sweep` argument value.
    ///
    /// # Errors
    ///
    /// Returns the offending string if it is not `stack` or `direct`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "stack" => Ok(SweepMode::Stack),
            "direct" => Ok(SweepMode::Direct),
            other => Err(format!(
                "unknown sweep mode '{other}' (expected stack|direct)"
            )),
        }
    }
}

impl std::fmt::Display for SweepMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Environment variable that turns on the runtime stack-vs-direct
/// cross-check (`1` = on, `0`/unset = off). When on, the traffic suites
/// recompute every swept cell with direct simulation and route any
/// divergence through the auditor as an `InvariantViolation`.
pub const SWEEP_VERIFY_ENV: &str = "MEMBW_SWEEP_VERIFY";

/// Parse a [`SWEEP_VERIFY_ENV`] value.
///
/// # Errors
///
/// Returns a usage message for anything but `0` or `1`.
pub fn parse_verify(s: &str) -> Result<bool, String> {
    match s {
        "1" => Ok(true),
        "0" => Ok(false),
        other => Err(format!("{SWEEP_VERIFY_ENV} must be 0 or 1, got '{other}'")),
    }
}

/// `true` if the runtime sweep cross-check is requested via
/// [`SWEEP_VERIFY_ENV`]. Malformed values read as off (the `repro`
/// binary rejects them up front).
pub fn verify_requested() -> bool {
    std::env::var(SWEEP_VERIFY_ENV)
        .ok()
        .and_then(|v| parse_verify(&v).ok())
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_modes() {
        assert_eq!(SweepMode::parse("stack").unwrap(), SweepMode::Stack);
        assert_eq!(SweepMode::parse("direct").unwrap(), SweepMode::Direct);
        assert!(SweepMode::parse("fast").is_err());
        assert_eq!(SweepMode::default(), SweepMode::Stack);
        assert_eq!(SweepMode::Stack.key(), "stack");
    }

    #[test]
    fn parses_verify_values() {
        assert_eq!(parse_verify("1"), Ok(true));
        assert_eq!(parse_verify("0"), Ok(false));
        assert!(parse_verify("yes").is_err());
    }
}
