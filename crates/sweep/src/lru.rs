//! The per-set LRU stack sweep engine.
//!
//! One capacity *level* per swept size: each level keeps, for every one
//! of its sets, the resident block numbers in MRU-first order with a
//! dirty bit alongside each (the dirty-level tracking layered on the
//! LRU stack). A cache set under LRU is exactly this recency list, so
//! replaying each reference piece against every level in one trace
//! pass reproduces the direct simulator's per-capacity counters
//! verbatim: hit/miss splits, write-allocate fills, dirty-eviction
//! write-backs, write-through bytes, and the end-of-run flush.

use membw_cache::{
    Associativity, CacheConfig, CacheStats, ConfigError, ReplacementPolicy, WriteAllocate,
    WritePolicy,
};
use membw_trace::{MemRef, Workload};

/// Empty-slot marker. Real block numbers are `addr / block_size`, which
/// cannot reach `u64::MAX` for any addressable byte.
const EMPTY: u64 = u64::MAX;

/// Cancel-poll stride on the reference stream.
const CANCEL_POLL: usize = 4096;

/// The organization held fixed across a capacity sweep.
///
/// Defaults match [`CacheConfig::builder`]: direct-mapped, write-back,
/// write-allocate, LRU, no prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSpec {
    /// Transfer/address block size in bytes.
    pub block_size: u64,
    /// Associativity applied at every capacity.
    pub associativity: Associativity,
    /// Write-hit policy.
    pub write_policy: WritePolicy,
    /// Write-miss policy.
    pub write_allocate: WriteAllocate,
    /// Replacement policy (the engine represents only LRU).
    pub replacement: ReplacementPolicy,
    /// Tagged prefetch (the engine represents only `false`).
    pub tagged_prefetch: bool,
}

impl SweepSpec {
    /// A spec with the builder's defaults at `block_size`.
    pub fn new(block_size: u64) -> Self {
        Self {
            block_size,
            associativity: Associativity::Ways(1),
            write_policy: WritePolicy::WriteBack,
            write_allocate: WriteAllocate::Allocate,
            replacement: ReplacementPolicy::Lru,
            tagged_prefetch: false,
        }
    }

    /// Replace the associativity.
    pub fn associativity(mut self, a: Associativity) -> Self {
        self.associativity = a;
        self
    }

    /// Replace the write-hit policy.
    pub fn write_policy(mut self, p: WritePolicy) -> Self {
        self.write_policy = p;
        self
    }

    /// Replace the write-miss policy.
    pub fn write_allocate(mut self, p: WriteAllocate) -> Self {
        self.write_allocate = p;
        self
    }

    /// Replace the replacement policy (non-LRU falls back to direct).
    pub fn replacement(mut self, r: ReplacementPolicy) -> Self {
        self.replacement = r;
        self
    }

    /// Enable tagged prefetch (falls back to direct simulation).
    pub fn tagged_prefetch(mut self, on: bool) -> Self {
        self.tagged_prefetch = on;
        self
    }

    /// The validated [`CacheConfig`] this spec denotes at `capacity`.
    ///
    /// # Errors
    ///
    /// Whatever [`CacheConfig::builder`] rejects — callers should treat
    /// [`ConfigError::is_geometry_limit`] errors as expected point
    /// omissions and anything else as a bug worth a diagnostic.
    pub fn config_for(&self, capacity: u64) -> Result<CacheConfig, ConfigError> {
        CacheConfig::builder(capacity, self.block_size)
            .associativity(self.associativity)
            .write_policy(self.write_policy)
            .write_allocate(self.write_allocate)
            .replacement(self.replacement)
            .tagged_prefetch(self.tagged_prefetch)
            .build()
    }

    /// Why the stack engine cannot represent this spec exactly, if it
    /// cannot. `None` means the engine is exact for every capacity.
    pub fn unsupported_reason(&self) -> Option<&'static str> {
        if self.replacement != ReplacementPolicy::Lru {
            return Some("non-LRU replacement is not a stack algorithm per set");
        }
        if self.tagged_prefetch {
            return Some("tagged prefetch couples sets across accesses");
        }
        if self.write_allocate == WriteAllocate::Validate {
            return Some("write-validate tracks word-granular validity");
        }
        None
    }
}

/// Returned by [`LruSweep::new`] when the spec needs the direct
/// fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepUnsupported(pub &'static str);

impl std::fmt::Display for SweepUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stack sweep cannot represent this config: {}", self.0)
    }
}

/// One capacity level: a truncated LRU stack per set, with dirty bits.
#[derive(Debug)]
struct Level {
    set_mask: u64,
    ways: usize,
    /// `num_sets * ways`, set-major, MRU-first within a set.
    blocks: Vec<u64>,
    dirty: Vec<bool>,
    read_hits: u64,
    read_misses: u64,
    write_hits: u64,
    write_misses: u64,
    /// Demand fills (each fetches one whole block).
    fills: u64,
    /// Dirty evictions (each writes back one whole block).
    writebacks: u64,
    /// Write-through / no-allocate bytes pushed below.
    through_bytes: u64,
}

impl Level {
    fn new(cfg: &CacheConfig) -> Self {
        let slots = (cfg.num_sets() * cfg.ways()) as usize;
        Self {
            set_mask: cfg.num_sets() - 1,
            ways: cfg.ways() as usize,
            blocks: vec![EMPTY; slots],
            dirty: vec![false; slots],
            read_hits: 0,
            read_misses: 0,
            write_hits: 0,
            write_misses: 0,
            fills: 0,
            writebacks: 0,
            through_bytes: 0,
        }
    }

    fn bytes(&self) -> u64 {
        (self.blocks.len() * (std::mem::size_of::<u64>() + 1)) as u64
    }

    #[inline]
    fn access(&mut self, bn: u64, is_write: bool, size: u64, wp: WritePolicy, wa: WriteAllocate) {
        debug_assert_ne!(bn, EMPTY);
        let base = (bn & self.set_mask) as usize * self.ways;
        let slots = &mut self.blocks[base..base + self.ways];
        let dirt = &mut self.dirty[base..base + self.ways];

        if let Some(way) = slots.iter().position(|&b| b == bn) {
            // Hit: rotate the touched block to MRU, carrying its dirty
            // bit; writes dirty it (write-back) or push through.
            if is_write {
                self.write_hits += 1;
            } else {
                self.read_hits += 1;
            }
            let mut d = dirt[way];
            for w in (1..=way).rev() {
                slots[w] = slots[w - 1];
                dirt[w] = dirt[w - 1];
            }
            slots[0] = bn;
            if is_write {
                match wp {
                    WritePolicy::WriteBack => d = true,
                    WritePolicy::WriteThrough => self.through_bytes += size,
                }
            }
            dirt[0] = d;
            return;
        }

        // Miss.
        if is_write {
            self.write_misses += 1;
            if wa == WriteAllocate::NoAllocate {
                // Straight through; set state untouched.
                self.through_bytes += size;
                return;
            }
        } else {
            self.read_misses += 1;
        }

        // Allocate: evict LRU (invalid slots drift to the tail, so a
        // non-EMPTY tail slot is the true LRU victim), fill at MRU.
        self.fills += 1;
        let last = self.ways - 1;
        if slots[last] != EMPTY && dirt[last] {
            self.writebacks += 1;
        }
        for w in (1..=last).rev() {
            slots[w] = slots[w - 1];
            dirt[w] = dirt[w - 1];
        }
        slots[0] = bn;
        dirt[0] = is_write && wp == WritePolicy::WriteBack;
        if is_write && wp == WritePolicy::WriteThrough {
            self.through_bytes += size;
        }
    }

    /// Fold the level's counters (plus the stream-wide shared counters)
    /// into the exact per-capacity [`CacheStats`].
    fn finish(&self, shared: &Shared, block: u64) -> CacheStats {
        let dirty_resident = self
            .blocks
            .iter()
            .zip(&self.dirty)
            .filter(|(&b, &d)| b != EMPTY && d)
            .count() as u64;
        CacheStats {
            accesses: shared.accesses,
            reads: shared.reads,
            writes: shared.writes,
            request_bytes: shared.request_bytes,
            read_hits: self.read_hits,
            read_misses: self.read_misses,
            write_hits: self.write_hits,
            write_misses: self.write_misses,
            bytes_fetched: self.fills * block,
            bytes_written_back: self.writebacks * block,
            bytes_written_through: self.through_bytes,
            bytes_flushed: dirty_resident * block,
            ..CacheStats::default()
        }
    }
}

/// Stream-wide counters, identical at every capacity (the straddle
/// split depends only on the block size, which the sweep holds fixed).
#[derive(Debug, Default)]
struct Shared {
    accesses: u64,
    reads: u64,
    writes: u64,
    request_bytes: u64,
}

/// The one-pass multi-capacity LRU engine. Most callers want
/// [`sweep_lru`], which adds the loud direct fallback.
#[derive(Debug)]
pub struct LruSweep {
    spec: SweepSpec,
    /// `(capacity index in the caller's list, level)`.
    levels: Vec<(usize, Level)>,
    n_capacities: usize,
    shared: Shared,
}

impl LruSweep {
    /// Build levels for every representable capacity.
    ///
    /// Capacities whose geometry is invalid are skipped exactly like
    /// the direct path omits them (unexpected configuration errors get
    /// a stderr diagnostic). The level arrays are reported to the
    /// ambient memory governor as arena bytes.
    ///
    /// # Errors
    ///
    /// [`SweepUnsupported`] when the spec itself is outside the stack
    /// model — the caller must fall back to direct simulation.
    pub fn new(spec: &SweepSpec, capacities: &[u64]) -> Result<Self, SweepUnsupported> {
        if let Some(reason) = spec.unsupported_reason() {
            return Err(SweepUnsupported(reason));
        }
        let mut levels = Vec::with_capacity(capacities.len());
        for (i, &cap) in capacities.iter().enumerate() {
            if let Some(cfg) = config_or_skip(spec, cap) {
                levels.push((i, Level::new(&cfg)));
            }
        }
        let total: u64 = levels.iter().map(|(_, l)| l.bytes()).sum();
        membw_runner::ambient_governor().observe_arena_bytes(total);
        Ok(Self {
            spec: *spec,
            levels,
            n_capacities: capacities.len(),
            shared: Shared::default(),
        })
    }

    #[inline]
    fn access_piece(&mut self, r: MemRef) {
        debug_assert!(r.fits_in_block(self.spec.block_size));
        self.shared.accesses += 1;
        self.shared.request_bytes += u64::from(r.size);
        let is_write = r.kind.is_write();
        if is_write {
            self.shared.writes += 1;
        } else {
            self.shared.reads += 1;
        }
        let bn = r.addr / self.spec.block_size;
        let size = u64::from(r.size);
        let (wp, wa) = (self.spec.write_policy, self.spec.write_allocate);
        for (_, level) in &mut self.levels {
            level.access(bn, is_write, size, wp, wa);
        }
    }

    /// One pass over `refs`: split straddling references exactly like
    /// [`membw_cache::Cache::access`] (QPT-style per-block pieces),
    /// update every level, flush, and return one `Option<CacheStats>`
    /// per requested capacity (`None` = geometry invalid, omitted).
    pub fn run(mut self, refs: &[MemRef]) -> Vec<Option<CacheStats>> {
        let cancel = membw_runner::ambient_cancel_token();
        let block = self.spec.block_size;
        for (i, r) in refs.iter().enumerate() {
            if i % CANCEL_POLL == 0 {
                cancel.check();
            }
            if r.fits_in_block(block) {
                self.access_piece(*r);
            } else {
                let mut addr = r.addr;
                let end = r.addr + u64::from(r.size);
                while addr < end {
                    let block_end = (addr / block + 1) * block;
                    let piece = (block_end.min(end) - addr) as u16;
                    self.access_piece(MemRef {
                        addr,
                        size: piece,
                        kind: r.kind,
                    });
                    addr += u64::from(piece);
                }
            }
        }
        let mut out: Vec<Option<CacheStats>> = vec![None; self.n_capacities];
        for (i, level) in &self.levels {
            out[*i] = Some(level.finish(&self.shared, block));
        }
        out
    }
}

/// Build `spec` at `capacity`, treating geometry-limit errors as an
/// expected point omission and logging anything else.
fn config_or_skip(spec: &SweepSpec, capacity: u64) -> Option<CacheConfig> {
    match spec.config_for(capacity) {
        Ok(cfg) => Some(cfg),
        Err(e) if e.is_geometry_limit() => None,
        Err(e) => {
            eprintln!(
                "sweep: unexpected cache-config error at capacity {capacity} B \
                 (block {} B): {e}; point omitted",
                spec.block_size
            );
            None
        }
    }
}

/// Direct per-capacity simulation of `spec` — the fallback and the
/// cross-check oracle.
fn direct_point(spec: &SweepSpec, capacity: u64, refs: &[MemRef]) -> Option<CacheStats> {
    let cfg = config_or_skip(spec, capacity)?;
    let mut c = membw_cache::Cache::new(cfg);
    for &r in refs {
        c.access(r);
    }
    Some(c.flush())
}

/// Sweep `spec` over `capacities` in one pass, returning the exact
/// per-capacity counters (`None` where the geometry is invalid and the
/// point is omitted, as the direct path does).
///
/// Specs outside the stack model fall back **loudly** to per-capacity
/// direct simulation — a stderr line names the reason — so the result
/// is exact either way.
pub fn sweep_lru(spec: &SweepSpec, capacities: &[u64], refs: &[MemRef]) -> Vec<Option<CacheStats>> {
    match LruSweep::new(spec, capacities) {
        Ok(engine) => engine.run(refs),
        Err(unsupported) => {
            eprintln!("sweep: {unsupported}; falling back to direct simulation");
            capacities
                .iter()
                .map(|&cap| direct_point(spec, cap, refs))
                .collect()
        }
    }
}

/// Direct-simulation oracle for one capacity of a sweep (public for the
/// suites' runtime cross-check and the property tests).
pub fn direct_reference(spec: &SweepSpec, capacity: u64, refs: &[MemRef]) -> Option<CacheStats> {
    direct_point(spec, capacity, refs)
}

/// Convenience for tests: sweep a [`Workload`]'s collected refs.
pub fn sweep_workload<W: Workload + ?Sized>(
    spec: &SweepSpec,
    capacities: &[u64],
    workload: &W,
) -> Vec<Option<CacheStats>> {
    sweep_lru(spec, capacities, &workload.collect_mem_refs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::AccessKind;

    /// Deterministic mixed trace with straddles and writes.
    fn trace(n: usize, span_blocks: u64, seed: u64) -> Vec<MemRef> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = (x >> 24) % (span_blocks * 32);
                let size = [1u16, 2, 4, 8][(x >> 9) as usize % 4];
                let kind = if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                MemRef { addr, size, kind }
            })
            .collect()
    }

    fn assert_equiv(spec: &SweepSpec, capacities: &[u64], refs: &[MemRef]) {
        let swept = sweep_lru(spec, capacities, refs);
        for (&cap, got) in capacities.iter().zip(&swept) {
            let want = direct_reference(spec, cap, refs);
            assert_eq!(
                *got, want,
                "sweep diverges from direct at capacity {cap} (spec {spec:?})"
            );
        }
    }

    #[test]
    fn matches_direct_simulation_exactly() {
        let caps: Vec<u64> = (6..=14).map(|p| 1u64 << p).collect();
        for seed in [1u64, 7, 99] {
            let refs = trace(4000, 128, seed);
            for assoc in [
                Associativity::Ways(1),
                Associativity::Ways(2),
                Associativity::Ways(4),
                Associativity::Full,
            ] {
                for wp in [WritePolicy::WriteBack, WritePolicy::WriteThrough] {
                    for wa in [WriteAllocate::Allocate, WriteAllocate::NoAllocate] {
                        let spec = SweepSpec::new(32)
                            .associativity(assoc)
                            .write_policy(wp)
                            .write_allocate(wa);
                        assert_equiv(&spec, &caps, &refs);
                    }
                }
            }
        }
    }

    #[test]
    fn unsupported_specs_fall_back_to_direct() {
        let refs = trace(1000, 64, 3);
        let caps = [256u64, 1024, 4096];
        let spec = SweepSpec::new(32).replacement(ReplacementPolicy::Fifo);
        assert!(LruSweep::new(&spec, &caps).is_err());
        // The fallback still produces the direct answer.
        assert_equiv(&spec, &caps, &refs);
        let spec = SweepSpec::new(32).tagged_prefetch(true);
        assert_equiv(&spec, &caps, &refs);
    }

    #[test]
    fn validate_allocation_falls_back() {
        let refs = trace(1000, 64, 5);
        let spec = SweepSpec::new(4).write_allocate(WriteAllocate::Validate);
        assert!(spec.unsupported_reason().is_some());
        assert_equiv(&spec, &[64, 256, 1024], &refs);
    }

    #[test]
    fn invalid_geometries_are_omitted() {
        // 128B blocks, 4 ways: capacities below 512B cannot host a set.
        let refs = trace(200, 16, 9);
        let spec = SweepSpec::new(128).associativity(Associativity::Ways(4));
        let caps = [64u64, 128, 256, 512, 1024];
        let swept = sweep_lru(&spec, &caps, &refs);
        assert!(swept[0].is_none() && swept[1].is_none() && swept[2].is_none());
        assert!(swept[3].is_some() && swept[4].is_some());
    }

    #[test]
    fn empty_trace_yields_zero_stats() {
        let spec = SweepSpec::new(32);
        let swept = sweep_lru(&spec, &[1024], &[]);
        let s = swept[0].expect("valid geometry");
        assert_eq!(s.accesses, 0);
        assert_eq!(s.traffic_below(), 0);
    }
}
