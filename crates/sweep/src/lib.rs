//! Single-pass multi-configuration cache sweeps.
//!
//! The paper's traffic tables are *sweeps*: the same reference stream
//! run against a whole axis of cache capacities with everything else
//! fixed (Table 7 is twelve direct-mapped sizes, Figure 4 is seventeen
//! sizes per block-size curve). Simulating each point independently
//! replays the trace once per point. But LRU is a stack algorithm
//! (Mattson et al. 1970): with bit-selection indexing, every set of a
//! small cache is refined by the corresponding sets of every larger
//! cache, so one trace pass maintaining a *truncated per-set LRU stack
//! per capacity level* reproduces each level's hit/miss/eviction
//! behavior exactly — including dirty-line tracking, which rides along
//! on the per-level stacks so write-back and end-of-run flush traffic
//! come out byte-exact, not just miss counts.
//!
//! [`sweep_lru`] is the entry point: it consumes one replayed reference
//! stream and returns a full [`CacheStats`] per capacity, each equal —
//! counter for counter — to what [`membw_cache::Cache`] produces for
//! that configuration (property-tested in `tests/sweep_equivalence.rs`
//! and enforced at runtime by the auditor when
//! [`verify_requested`] is set). Configurations the stack model cannot
//! represent exactly (non-LRU replacement, tagged prefetch,
//! write-validate allocation) **fall back loudly** to per-capacity
//! direct simulation — correctness never depends on the engine's
//! coverage.
//!
//! Sweep state registers with the ambient memory governor and the hot
//! loop polls the ambient [`membw_runner::CancelToken`], so sweeps
//! degrade and drain exactly like direct simulation jobs.

mod lru;
mod mode;

pub use lru::{direct_reference, sweep_lru, sweep_workload, LruSweep, SweepSpec, SweepUnsupported};
pub use mode::{parse_verify, verify_requested, SweepMode, SWEEP_VERIFY_ENV};
