//! Crash-restart proof for `repro serve` (satellite d): SIGKILL the
//! daemon mid-render, restart it on the same directories, and verify
//!
//! * warm requests answer from the checksummed result store with the
//!   exact bytes of the pre-crash answer,
//! * the interrupted render resumes from the engine checkpoint
//!   (`resumed > 0`) and still produces byte-identical output,
//! * a final SIGTERM drains the daemon to exit code 0 with no stray
//!   `.tmp` files.
//!
//! The daemon is the real binary (`CARGO_BIN_EXE_repro`), killed with
//! a real SIGKILL — nothing in-process to soften the crash.

use membw_core::service::{source, ServiceRequest, ServiceResponse};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use membw_core::workloads::Scale;
use membw_serve::{client, Endpoint};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WARM_TARGET: &str = "table7";
const LONG_TARGET: &str = "fig3";
/// Slows every inner job of fig3's first suite so the SIGKILL lands
/// mid-render with some jobs checkpointed and some not.
const SLOW_SPEC: &str = "fig3/spec92:*:150";

fn request(target: &str) -> ServiceRequest {
    let mut req = ServiceRequest::new(target);
    req.scale = "test".to_string();
    req
}

fn spawn_daemon(base: &Path, sock: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--socket",
            sock.to_str().unwrap(),
            "--store",
            base.join("store").to_str().unwrap(),
            "--checkpoint-dir",
            base.join("ckpt").to_str().unwrap(),
            "--jobs",
            "2",
        ])
        .env("MEMBW_FAULT_SLOW", SLOW_SPEC)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve")
}

/// Wait until the checkpoint tree holds at least one archived job
/// (`<index>.json` under a `<label>-<hash>` directory) for the *long*
/// target — the warm target checkpoints too, so an unfiltered scan
/// would fire before the render we intend to interrupt has started.
fn wait_for_checkpoint(root: &Path, label_prefix: &str, timeout: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if let Ok(dirs) = std::fs::read_dir(root) {
            for d in dirs.flatten() {
                if !d.file_name().to_string_lossy().starts_with(label_prefix) {
                    continue;
                }
                if let Ok(files) = std::fs::read_dir(d.path()) {
                    for f in files.flatten() {
                        let name = f.file_name().to_string_lossy().into_owned();
                        if name.ends_with(".json") && name != "meta.json" {
                            return true;
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

fn query_ok(endpoint: &Endpoint, target: &str) -> (String, String, u64) {
    let resp = client::query(endpoint, &request(target), Some(Duration::from_secs(120)))
        .expect("query transport");
    match resp {
        ServiceResponse::Ok {
            source,
            stdout,
            resumed,
            ..
        } => (source, stdout, resumed),
        other => panic!("expected ok for {target}, got {other:?}"),
    }
}

#[test]
fn sigkill_restart_serves_warm_hits_and_resumes_checkpointed_work() {
    let base = std::env::temp_dir().join(format!("membw_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let sock = base.join("daemon.sock");
    let endpoint = Endpoint::Unix(sock.clone());

    // --- First life: answer one request, die mid-way through another.
    let mut daemon = spawn_daemon(&base, &sock);
    assert!(
        client::wait_ready(&endpoint, Duration::from_secs(30)),
        "daemon never came up"
    );

    let (src, warm_stdout, _) = query_ok(&endpoint, WARM_TARGET);
    assert_eq!(src, source::COMPUTED, "first answer is a cold compute");

    // Fire the long render and abandon the connection; the daemon keeps
    // computing and checkpointing inner jobs.
    let fire = {
        let ep = endpoint.clone();
        std::thread::spawn(move || {
            let _ = client::query(&ep, &request(LONG_TARGET), Some(Duration::from_secs(1)));
        })
    };
    assert!(
        wait_for_checkpoint(&base.join("ckpt"), "fig3_", Duration::from_secs(60)),
        "no inner job checkpointed before the kill"
    );
    daemon.kill().expect("SIGKILL daemon"); // Child::kill is SIGKILL on unix
    daemon.wait().expect("reap daemon");
    let _ = fire.join();

    // --- Second life: same directories, stale socket file and all.
    let mut daemon = spawn_daemon(&base, &sock);
    assert!(
        client::wait_ready(&endpoint, Duration::from_secs(30)),
        "restart never came up"
    );

    // Warm hit: served from the sealed store, byte-identical.
    let (src, stdout, _) = query_ok(&endpoint, WARM_TARGET);
    assert_eq!(src, source::STORE, "restart must answer from the store");
    assert_eq!(
        stdout, warm_stdout,
        "store hit must be byte-identical to the pre-crash answer"
    );

    // Interrupted render: recomputed, resuming the checkpointed jobs,
    // and byte-identical to an undisturbed CLI render.
    let (src, stdout, resumed) = query_ok(&endpoint, LONG_TARGET);
    assert_eq!(src, source::COMPUTED, "the killed render was never stored");
    assert!(
        resumed > 0,
        "restarted render must resume checkpointed jobs (resumed={resumed})"
    );
    let reference = targets::render_target(LONG_TARGET, Scale::Test, SweepMode::Stack)
        .expect("reference render")
        .stdout;
    assert_eq!(
        stdout, reference,
        "resumed render must be byte-identical to a fresh one"
    );

    // --- SIGTERM drain: exit 0, no temp files anywhere.
    let pid = daemon.id();
    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let exit = daemon.wait().expect("wait for drain");
    assert_eq!(exit.code(), Some(0), "SIGTERM drain must exit 0");

    for dir in [base.join("store"), base.join("ckpt")] {
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for e in entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                assert!(
                    !name.ends_with(".tmp"),
                    "stray temp file after drain: {name}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
