//! Fault tolerance of the `repro` binary itself: an injected job fault
//! fails its target alone, healthy targets' stdout stays byte-identical
//! at any `--jobs` setting, the failure summary names the job, the exit
//! status is nonzero, and an interrupted campaign resumed with
//! `--resume` produces byte-identical JSON archives.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Run the `repro` binary with `args` and extra environment `envs`,
/// pointing its checkpoint store at `ckpt`.
fn repro(args: &[&str], envs: &[(&str, &str)], ckpt: &std::path::Path) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args)
        .arg("--checkpoint-dir")
        .arg(ckpt)
        .env_remove("MEMBW_FAULT_INJECT")
        .env_remove("MEMBW_FAULT_SLOW")
        .env_remove("MEMBW_JOBS");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("repro spawns")
}

fn stdout_str(o: &Output) -> String {
    String::from_utf8(o.stdout.clone()).expect("utf8 stdout")
}

fn stderr_str(o: &Output) -> String {
    String::from_utf8(o.stderr.clone()).expect("utf8 stderr")
}

/// A unique scratch directory per test.
fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("membw_repro_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

#[test]
fn faulted_target_fails_alone_with_identical_healthy_stdout() {
    let dir = scratch("fault_alone");
    // Clean reference: table7 only, serial.
    let clean = repro(
        &["--scale", "test", "--jobs", "1", "table7"],
        &[],
        &dir.join("ckpt-clean"),
    );
    assert!(clean.status.success(), "clean run: {}", stderr_str(&clean));
    let clean_stdout = stdout_str(&clean);
    assert!(clean_stdout.contains("Table 7"), "sanity: table7 printed");

    // Faulted: table7 plus a fig4 whose job 3 panics — at both ends of
    // the thread-count spectrum the healthy target's stdout must not
    // move by a byte.
    for jobs in ["1", "8"] {
        let faulted = repro(
            &["--scale", "test", "--jobs", jobs, "table7", "fig4"],
            &[("MEMBW_FAULT_INJECT", "fig4:3")],
            &dir.join(format!("ckpt-fault-{jobs}")),
        );
        assert!(
            !faulted.status.success(),
            "a failed target must make the exit status nonzero"
        );
        assert_eq!(
            stdout_str(&faulted),
            clean_stdout,
            "healthy stdout byte-identical at --jobs {jobs}"
        );
        let err = stderr_str(&faulted);
        assert!(err.contains("fig4:3"), "summary names the job: {err}");
        assert!(
            err.contains("injected fault"),
            "summary carries the panic message: {err}"
        );
        assert!(
            err.contains("FAILED jobs"),
            "failure summary table rendered: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_run_resumes_to_byte_identical_archives() {
    let dir = scratch("resume");
    let ckpt = dir.join("ckpt");

    // Run 1: table8 with job 5 failing — the campaign is "interrupted"
    // (exits nonzero, no JSON archived), but the healthy jobs are
    // checkpointed.
    let json1 = dir.join("json-interrupted");
    let run1 = repro(
        &[
            "--scale",
            "test",
            "table8",
            "--json",
            json1.to_str().expect("utf8 path"),
        ],
        &[("MEMBW_FAULT_INJECT", "table8:5")],
        &ckpt,
    );
    assert!(!run1.status.success(), "interrupted run exits nonzero");
    assert!(
        !json1.join("table8.json").exists(),
        "a failed target archives nothing"
    );

    // Run 2: --resume with a fault now injected at job 0. Job 0 was
    // checkpointed by run 1, so it replays from the archive and the
    // injection never executes — proof the resume path is live; only
    // the previously failed job 5 recomputes (now healthy).
    let json2 = dir.join("json-resumed");
    let run2 = repro(
        &[
            "--scale",
            "test",
            "table8",
            "--resume",
            "--json",
            json2.to_str().expect("utf8 path"),
        ],
        &[("MEMBW_FAULT_INJECT", "table8:0")],
        &ckpt,
    );
    assert!(
        run2.status.success(),
        "resumed run succeeds (job 0 replayed, job 5 recomputed): {}",
        stderr_str(&run2)
    );

    // Reference: one uninterrupted run in a fresh checkpoint dir.
    let json3 = dir.join("json-clean");
    let run3 = repro(
        &[
            "--scale",
            "test",
            "table8",
            "--json",
            json3.to_str().expect("utf8 path"),
        ],
        &[],
        &dir.join("ckpt-fresh"),
    );
    assert!(run3.status.success(), "{}", stderr_str(&run3));

    let resumed = std::fs::read(json2.join("table8.json")).expect("resumed archive");
    let fresh = std::fs::read(json3.join("table8.json")).expect("fresh archive");
    assert_eq!(
        resumed, fresh,
        "resumed JSON archive byte-identical to the uninterrupted run"
    );
    assert_eq!(
        stdout_str(&run2),
        stdout_str(&run3),
        "resumed stdout byte-identical too"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_target_suggests_the_nearest_name() {
    let dir = scratch("suggest");
    let out = repro(&["tabel8"], &[], &dir.join("ckpt"));
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = stderr_str(&out);
    assert!(
        err.contains("did you mean 'table8'"),
        "suggestion rendered: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_json_dir_fails_with_the_path_and_continues() {
    let dir = scratch("unwritable");
    // A file where the JSON directory should go: create_dir_all fails.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a directory").expect("blocker file");
    let bad_json = blocker.join("sub");
    let out = repro(
        &[
            "--scale",
            "test",
            "table2",
            "params",
            "--json",
            bad_json.to_str().expect("utf8 path"),
        ],
        &[],
        &dir.join("ckpt"),
    );
    assert!(!out.status.success(), "archive failure exits nonzero");
    let err = stderr_str(&out);
    assert!(
        err.contains("create JSON directory"),
        "error names the operation: {err}"
    );
    assert!(
        err.contains(bad_json.to_str().unwrap()),
        "error names the path: {err}"
    );
    // The campaign kept going: `params` (which never archives JSON)
    // still printed after table2's archive failed.
    let stdout = stdout_str(&out);
    assert!(
        stdout.contains("Tables 4-5: machine parameters"),
        "later targets still run: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
