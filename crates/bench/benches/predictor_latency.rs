//! Analytic fast-path bench: single-query predictor latency (the
//! microsecond claim), full analytic target renders, and the simulated
//! render they replace — the triage speedup is the ratio of the last
//! two.

use criterion::{criterion_group, criterion_main, Criterion};
use membw_core::analytic::ecm::{self, TrafficGeometry};
use membw_core::fastpath::{self, ANALYTIC_TARGETS};
use membw_core::sim::{Experiment, MachineSpec};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use membw_core::trace::signature::compute_signature;
use membw_core::workloads::{suite92, Scale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.sample_size(20);

    // One real signature, computed once: predictions are pure
    // histogram arithmetic from here on.
    let suite = suite92(Scale::Test);
    let b0 = suite.first().expect("suite nonempty");
    let sig = compute_signature(b0.name(), "Test", b0.workload());
    let cfg = fastpath::ecm_config(&MachineSpec::spec92(Experiment::C));

    g.bench_function("predict_time_single_query", |b| {
        b.iter(|| black_box(ecm::predict_time(black_box(&sig.kernel), &cfg)))
    });
    g.bench_function("predict_traffic_single_query", |b| {
        b.iter(|| {
            black_box(ecm::predict_traffic(
                black_box(&sig.kernel),
                32,
                64 * 1024,
                TrafficGeometry::Assoc { ways: 1 },
            ))
        })
    });

    // Whole-target latency, analytic vs simulated: the serve fast
    // lane's warm win is the gap between these (plus the memoized
    // cache, which makes the analytic side even cheaper).
    for target in ANALYTIC_TARGETS {
        g.bench_function(format!("render_{target}_analytic"), |b| {
            b.iter(|| black_box(fastpath::render_target_analytic(target, Scale::Test)))
        });
    }
    g.bench_function("render_table7_simulated", |b| {
        b.iter(|| {
            black_box(targets::render_target(
                "table7",
                Scale::Test,
                SweepMode::Stack,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
