//! Table 7 bench: the trace-driven cache simulator over the traffic-
//! ratio size sweep.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use membw_core::cache::{Cache, CacheConfig};
use membw_core::run_table7::SIZES;
use membw_core::sweep::{sweep_lru, SweepSpec};
use membw_core::trace::Workload;
use membw_core::workloads::Compress;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7");
    g.sample_size(10);
    let refs = Compress::new(20_000, 1 << 12, 7).collect_mem_refs();
    g.throughput(Throughput::Elements(refs.len() as u64));
    for size in [1u64 << 10, 1 << 14, 1 << 18] {
        g.bench_function(format!("traffic_ratio_compress_{size}B"), |b| {
            b.iter(|| {
                let cfg = CacheConfig::builder(size, 32).build().expect("valid");
                let mut cache = Cache::new(cfg);
                for &r in black_box(&refs) {
                    cache.access(r);
                }
                black_box(cache.flush().traffic_ratio())
            })
        });
    }
    // The table's whole 12-size row at once: the one-pass stack engine
    // against the per-size direct loop it replaced.
    g.bench_function("row_sweep_12_sizes_stack", |b| {
        let spec = SweepSpec::new(32);
        b.iter(|| black_box(sweep_lru(&spec, &SIZES, black_box(&refs))))
    });
    g.bench_function("row_sweep_12_sizes_direct", |b| {
        b.iter(|| {
            let out: Vec<_> = SIZES
                .iter()
                .map(|&size| {
                    let cfg = CacheConfig::builder(size, 32).build().expect("valid");
                    let mut cache = Cache::new(cfg);
                    for &r in black_box(&refs) {
                        cache.access(r);
                    }
                    cache.flush()
                })
                .collect();
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
