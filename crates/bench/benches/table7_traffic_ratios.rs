//! Table 7 bench: the trace-driven cache simulator over the traffic-
//! ratio size sweep.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use membw_core::cache::{Cache, CacheConfig};
use membw_core::trace::Workload;
use membw_core::workloads::Compress;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7");
    g.sample_size(10);
    let refs = Compress::new(20_000, 1 << 12, 7).collect_mem_refs();
    g.throughput(Throughput::Elements(refs.len() as u64));
    for size in [1u64 << 10, 1 << 14, 1 << 18] {
        g.bench_function(format!("traffic_ratio_compress_{size}B"), |b| {
            b.iter(|| {
                let cfg = CacheConfig::builder(size, 32).build().expect("valid");
                let mut cache = Cache::new(cfg);
                for &r in black_box(&refs) {
                    cache.access(r);
                }
                black_box(cache.flush().traffic_ratio())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
