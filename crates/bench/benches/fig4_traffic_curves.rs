//! Figure 4 bench: one traffic-vs-size curve (cache and MTC) per
//! iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use membw_core::cache::{Associativity, Cache, CacheConfig};
use membw_core::mtc::{MinCache, MinConfig};
use membw_core::trace::Workload;
use membw_core::workloads::Compress;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    let refs = Compress::new(10_000, 1 << 12, 7).collect_mem_refs();
    g.bench_function("cache_curve_6_blocksizes", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for block in [4u64, 8, 16, 32, 64, 128] {
                let cfg = CacheConfig::builder(16 * 1024, block)
                    .associativity(Associativity::Ways(4))
                    .build()
                    .expect("valid");
                let mut cache = Cache::new(cfg);
                for &r in black_box(&refs) {
                    cache.access(r);
                }
                total += cache.flush().traffic_below();
            }
            black_box(total)
        })
    });
    g.bench_function("mtc_curve_point", |b| {
        b.iter(|| {
            black_box(MinCache::simulate(
                &MinConfig::mtc(16 * 1024),
                black_box(&refs),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
