//! Figure 4 bench: one traffic-vs-size curve (cache and MTC) per
//! iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use membw_core::cache::{Associativity, Cache, CacheConfig};
use membw_core::mtc::{min_sweep, MinCache, MinConfig};
use membw_core::sweep::{sweep_lru, SweepSpec};
use membw_core::trace::Workload;
use membw_core::workloads::Compress;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    let refs = Compress::new(10_000, 1 << 12, 7).collect_mem_refs();
    g.bench_function("cache_curve_6_blocksizes", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for block in [4u64, 8, 16, 32, 64, 128] {
                let cfg = CacheConfig::builder(16 * 1024, block)
                    .associativity(Associativity::Ways(4))
                    .build()
                    .expect("valid");
                let mut cache = Cache::new(cfg);
                for &r in black_box(&refs) {
                    cache.access(r);
                }
                total += cache.flush().traffic_below();
            }
            black_box(total)
        })
    });
    g.bench_function("mtc_curve_point", |b| {
        b.iter(|| {
            black_box(MinCache::simulate(
                &MinConfig::mtc(16 * 1024),
                black_box(&refs),
            ))
        })
    });
    // The figure's full capacity axis (64B–4MB), one cache curve: the
    // one-pass stack engine against the per-capacity direct loop it
    // replaced.
    let caps: Vec<u64> = (6..=22).map(|p| 1u64 << p).collect();
    g.bench_function("cache_curve_17_capacities_stack", |b| {
        let spec = SweepSpec::new(32).associativity(Associativity::Ways(4));
        b.iter(|| black_box(sweep_lru(&spec, &caps, black_box(&refs))))
    });
    g.bench_function("cache_curve_17_capacities_direct", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for &s in &caps {
                let Ok(cfg) = CacheConfig::builder(s, 32)
                    .associativity(Associativity::Ways(4))
                    .build()
                else {
                    continue;
                };
                let mut cache = Cache::new(cfg);
                for &r in black_box(&refs) {
                    cache.access(r);
                }
                out.push(cache.flush());
            }
            black_box(out)
        })
    });
    // Same comparison for one MTC curve: shared-index multi-state sweep
    // vs one two-pass simulation per capacity.
    g.bench_function("mtc_curve_17_capacities_stack", |b| {
        let cfgs: Vec<MinConfig> = caps.iter().map(|&s| MinConfig::mtc(s)).collect();
        b.iter(|| black_box(min_sweep(&cfgs, black_box(&refs))))
    });
    g.bench_function("mtc_curve_17_capacities_direct", |b| {
        b.iter(|| {
            let out: Vec<_> = caps
                .iter()
                .map(|&s| MinCache::simulate(&MinConfig::mtc(s), black_box(&refs)))
                .collect();
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
