//! Figure 1 bench: dataset assembly and log-linear trend fitting.

use criterion::{criterion_group, criterion_main, Criterion};
use membw_core::analytic::pins::{dataset, fit_growth, Series};
use membw_core::run_fig1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.bench_function("fit_all_three_series", |b| {
        let data = dataset();
        b.iter(|| {
            let p = fit_growth(black_box(&data), Series::Pins);
            let m = fit_growth(black_box(&data), Series::MipsPerPin);
            let w = fit_growth(black_box(&data), Series::MipsPerBandwidth);
            black_box((p, m, w))
        })
    });
    g.bench_function("full_figure", |b| b.iter(|| black_box(run_fig1::run())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
