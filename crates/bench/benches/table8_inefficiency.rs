//! Table 8 bench: the two-pass Belady MTC simulation behind the traffic
//! -inefficiency numbers.
//!
//! Benchmarks the production heap-based [`MinCache`] against the
//! retained `BTreeSet` [`ReferenceMinCache`] on the same traces, so the
//! hot-loop overhaul's speedup is measured, not assumed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use membw_core::mtc::{MinCache, MinConfig, ReferenceMinCache};
use membw_core::trace::Workload;
use membw_core::workloads::{Compress, Eqntott};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table8");
    g.sample_size(10);
    let compress = Compress::new(20_000, 1 << 12, 7).collect_mem_refs();
    let eqntott = Eqntott::new(512, 7).collect_mem_refs();
    for (name, refs) in [("compress", &compress), ("eqntott", &eqntott)] {
        g.throughput(Throughput::Elements(refs.len() as u64));
        g.bench_function(format!("mtc_simulate_{name}"), |b| {
            b.iter(|| {
                black_box(MinCache::simulate(
                    &MinConfig::mtc(16 * 1024),
                    black_box(refs),
                ))
            })
        });
        g.bench_function(format!("mtc_simulate_{name}_btreeset_reference"), |b| {
            b.iter(|| {
                black_box(ReferenceMinCache::simulate(
                    &MinConfig::mtc(16 * 1024),
                    black_box(refs),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
