//! Table 8 bench: the two-pass Belady MTC simulation behind the traffic
//! -inefficiency numbers.
//!
//! Benchmarks the production heap-based [`MinCache`] against the
//! retained `BTreeSet` [`ReferenceMinCache`] on the same traces, so the
//! hot-loop overhaul's speedup is measured, not assumed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use membw_core::mtc::{min_sweep, MinCache, MinConfig, ReferenceMinCache};
use membw_core::trace::Workload;
use membw_core::workloads::{Compress, Eqntott};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table8");
    g.sample_size(10);
    let compress = Compress::new(20_000, 1 << 12, 7).collect_mem_refs();
    let eqntott = Eqntott::new(512, 7).collect_mem_refs();
    for (name, refs) in [("compress", &compress), ("eqntott", &eqntott)] {
        g.throughput(Throughput::Elements(refs.len() as u64));
        g.bench_function(format!("mtc_simulate_{name}"), |b| {
            b.iter(|| {
                black_box(MinCache::simulate(
                    &MinConfig::mtc(16 * 1024),
                    black_box(refs),
                ))
            })
        });
        g.bench_function(format!("mtc_simulate_{name}_btreeset_reference"), |b| {
            b.iter(|| {
                black_box(ReferenceMinCache::simulate(
                    &MinConfig::mtc(16 * 1024),
                    black_box(refs),
                ))
            })
        });
    }
    // The table's MTC column for one benchmark across eight capacities:
    // the shared-index multi-state sweep against one two-pass simulation
    // per capacity.
    let caps: Vec<u64> = (10..=17).map(|p| 1u64 << p).collect();
    g.throughput(Throughput::Elements(compress.len() as u64));
    g.bench_function("mtc_column_8_capacities_sweep", |b| {
        let cfgs: Vec<MinConfig> = caps.iter().map(|&s| MinConfig::mtc(s)).collect();
        b.iter(|| black_box(min_sweep(&cfgs, black_box(&compress))))
    });
    g.bench_function("mtc_column_8_capacities_direct", |b| {
        b.iter(|| {
            let out: Vec<_> = caps
                .iter()
                .map(|&s| MinCache::simulate(&MinConfig::mtc(s), black_box(&compress)))
                .collect();
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
