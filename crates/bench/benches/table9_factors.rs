//! Table 9 bench: factor isolation (five experiment pairs against the
//! reference MTC).

use criterion::{criterion_group, criterion_main, Criterion};
use membw_core::mtc::factors::{factor_gap, TABLE10_FACTORS};
use membw_core::workloads::Espresso;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table9");
    g.sample_size(10);
    let w = Espresso::new(128, 8, 4, 1);
    for spec in &TABLE10_FACTORS {
        let label = spec.name.replace(' ', "_").replace(['(', ')'], "");
        g.bench_function(format!("factor_{label}"), |b| {
            b.iter(|| black_box(factor_gap(black_box(spec), &w, 16 * 1024)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
