//! Figure 3 / Table 6 bench: the three-run execution-time decomposition
//! on in-order (A) and aggressive out-of-order (F) machines.

use criterion::{criterion_group, criterion_main, Criterion};
use membw_core::sim::{decompose, Experiment, MachineSpec};
use membw_core::trace::{RecordingSink, Workload};
use membw_core::workloads::Espresso;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    let w = Espresso::new(128, 8, 2, 1);
    for e in [Experiment::A, Experiment::C, Experiment::F] {
        g.bench_function(format!("decompose_espresso_exp{}", e.label()), |b| {
            let spec = MachineSpec::spec92(e);
            b.iter(|| black_box(decompose(black_box(&w), &spec)))
        });
    }
    // Same decomposition driven from a recorded trace: the replay-many
    // path every repro experiment takes through the trace cache.
    let mut rec = RecordingSink::new("espresso");
    w.generate(&mut rec);
    let trace = rec.finish();
    for e in [Experiment::A, Experiment::F] {
        g.bench_function(format!("decompose_espresso_replay_exp{}", e.label()), |b| {
            let spec = MachineSpec::spec92(e);
            b.iter(|| black_box(decompose(black_box(&trace), &spec)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
