//! §4.3 bench: the trend projection (and Eq. 5/7 arithmetic).

use criterion::{criterion_group, criterion_main, Criterion};
use membw_core::analytic::extrapolate::project;
use membw_core::analytic::{effective_pin_bandwidth, upper_bound_epin};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("extrapolation");
    g.bench_function("ten_year_projection", |b| {
        b.iter(|| black_box(project(black_box(600.0), 0.16, 0.60, 10)))
    });
    g.bench_function("epin_equations", |b| {
        b.iter(|| {
            let e = effective_pin_bandwidth(black_box(800.0), &[0.51, 0.73]);
            let o = upper_bound_epin(black_box(800.0), &[0.51, 0.73], &[29.2, 2.0]);
            black_box((e, o))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
