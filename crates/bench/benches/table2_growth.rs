//! Table 2 bench: minimal-traffic measurement of the tiled kernels at
//! two on-chip memory sizes (the C/D gain experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use membw_core::mtc::{MinCache, MinConfig, MinWritePolicy};
use membw_core::run_table2;
use membw_core::trace::Workload;
use membw_core::workloads::kernels::{Fft, TiledMatMul};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    let tmm = TiledMatMul::new(24, 8).collect_mem_refs();
    let fft = Fft::new(10).collect_mem_refs();
    g.bench_function("mtc_traffic_tmm", |b| {
        b.iter(|| {
            let cfg = MinConfig::new(1024, 4, MinWritePolicy::Allocate, true);
            black_box(MinCache::simulate(&cfg, black_box(&tmm)).traffic_below())
        })
    });
    g.bench_function("mtc_traffic_fft", |b| {
        b.iter(|| {
            let cfg = MinConfig::new(1024, 4, MinWritePolicy::Allocate, true);
            black_box(MinCache::simulate(&cfg, black_box(&fft)).traffic_below())
        })
    });
    g.bench_function("full_table", |b| b.iter(|| black_box(run_table2::run(512))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
