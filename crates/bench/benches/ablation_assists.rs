//! Ablation bench: the cache-assist techniques (plain / tagged prefetch
//! / stream buffers / victim / bypass) on one low-locality workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use membw_core::cache::{BypassCache, Cache, CacheConfig, StreamBuffers, VictimCache};
use membw_core::trace::Workload;
use membw_core::workloads::Compress;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    let refs = Compress::new(20_000, 1 << 12, 7).collect_mem_refs();
    g.throughput(Throughput::Elements(refs.len() as u64));
    let cfg = CacheConfig::builder(16 * 1024, 32).build().expect("valid");

    g.bench_function("plain", |b| {
        b.iter(|| {
            let mut cache = Cache::new(cfg);
            for &r in black_box(&refs) {
                cache.access(r);
            }
            black_box(cache.flush())
        })
    });
    g.bench_function("tagged_prefetch", |b| {
        let pf = CacheConfig::builder(16 * 1024, 32)
            .tagged_prefetch(true)
            .build()
            .expect("valid");
        b.iter(|| {
            let mut cache = Cache::new(pf);
            for &r in black_box(&refs) {
                cache.access(r);
            }
            black_box(cache.flush())
        })
    });
    g.bench_function("stream_buffers", |b| {
        b.iter(|| {
            let mut cache = StreamBuffers::new(cfg, 4, 4);
            for &r in black_box(&refs) {
                cache.access(r);
            }
            black_box(cache.flush())
        })
    });
    g.bench_function("victim", |b| {
        b.iter(|| {
            let mut cache = VictimCache::new(cfg, 8);
            for &r in black_box(&refs) {
                cache.access(r);
            }
            black_box(cache.flush())
        })
    });
    g.bench_function("bypass", |b| {
        b.iter(|| {
            let mut cache = BypassCache::new(cfg, 1024);
            for &r in black_box(&refs) {
                cache.access(r);
            }
            black_box(cache.flush())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
