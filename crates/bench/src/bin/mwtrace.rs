//! `mwtrace`: inspect `.mwtr` trace files.
//!
//! ```text
//! mwtrace stats  FILE...        reference counts, mix, footprint
//! mwtrace reuse  FILE           LRU miss-ratio curve (stack distances)
//! mwtrace opt    FILE           LRU vs Belady-min miss-ratio curves
//! mwtrace ratio  FILE SIZE_KB   traffic ratio of a 32B direct-mapped cache
//! ```
//!
//! Dump traces with `repro dump` first.

use membw_core::cache::{Cache, CacheConfig};
use membw_core::mtc::OptProfile;
use membw_core::trace::io::load_workload;
use membw_core::trace::reuse::ReuseProfile;
use membw_core::trace::stats::TraceStats;
use membw_core::trace::Workload;
use std::path::Path;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: mwtrace <stats|reuse|opt> FILE...  |  mwtrace ratio FILE SIZE_KB");
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

fn cmd_stats(paths: &[String]) {
    println!(
        "{:<20}{:>12}{:>10}{:>10}{:>14}",
        "trace", "refs", "reads%", "writes%", "footprint KB"
    );
    for p in paths {
        let w = load_workload(Path::new(p)).unwrap_or_else(|e| fail(e));
        let s = TraceStats::of(&w);
        println!(
            "{:<20}{:>12}{:>9.1}%{:>9.1}%{:>14.1}",
            w.name(),
            s.refs,
            100.0 * (1.0 - s.write_fraction()),
            100.0 * s.write_fraction(),
            s.footprint_bytes(4) as f64 / 1024.0
        );
    }
}

fn capacity_sweep() -> Vec<u64> {
    (5..=16).map(|p| 1u64 << p).collect() // 32 blocks (1KB) .. 64K blocks (2MB)
}

fn cmd_reuse(path: &str) {
    let w = load_workload(Path::new(path)).unwrap_or_else(|e| fail(e));
    let profile = ReuseProfile::measure(&w, 32);
    println!("LRU miss-ratio curve for {} (32B blocks):", w.name());
    println!("{:>12}{:>12}", "capacity", "miss ratio");
    for blocks in capacity_sweep() {
        println!(
            "{:>10}KB{:>12.4}",
            blocks * 32 / 1024,
            profile.lru_miss_ratio(blocks)
        );
    }
}

fn cmd_opt(path: &str) {
    let w = load_workload(Path::new(path)).unwrap_or_else(|e| fail(e));
    let refs = w.collect_mem_refs();
    let lru = ReuseProfile::measure(&w, 32);
    let opt = OptProfile::measure(&refs, 32);
    println!("LRU vs min miss ratios for {} (32B blocks):", w.name());
    println!("{:>12}{:>10}{:>10}{:>8}", "capacity", "LRU", "min", "gap");
    for blocks in capacity_sweep() {
        let l = lru.lru_miss_ratio(blocks);
        let o = opt.miss_ratio(blocks as usize);
        println!(
            "{:>10}KB{:>10.4}{:>10.4}{:>7.2}x",
            blocks * 32 / 1024,
            l,
            o,
            if o > 0.0 { l / o } else { 1.0 }
        );
    }
}

fn cmd_ratio(path: &str, size_kb: &str) {
    let kb: u64 = size_kb
        .parse()
        .unwrap_or_else(|_| fail("SIZE_KB must be a number"));
    let w = load_workload(Path::new(path)).unwrap_or_else(|e| fail(e));
    let cfg = CacheConfig::builder(kb * 1024, 32)
        .build()
        .unwrap_or_else(|e| fail(e));
    let mut cache = Cache::new(cfg);
    w.for_each_mem_ref(&mut |r| {
        cache.access(r);
    });
    let stats = cache.flush();
    println!("{}: {}KB direct-mapped 32B-block cache", w.name(), kb);
    println!("  accesses      {:>12}", stats.accesses);
    println!("  miss ratio    {:>12.4}", stats.miss_ratio());
    println!("  fetched KB    {:>12}", stats.bytes_fetched / 1024);
    println!(
        "  written KB    {:>12}",
        (stats.bytes_written_back + stats.bytes_flushed) / 1024
    );
    println!(
        "  traffic ratio {:>12.3}",
        stats.traffic_ratio().unwrap_or(0.0)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "stats" && !rest.is_empty() => cmd_stats(rest),
        Some((cmd, [file])) if cmd == "reuse" => cmd_reuse(file),
        Some((cmd, [file])) if cmd == "opt" => cmd_opt(file),
        Some((cmd, [file, kb])) if cmd == "ratio" => cmd_ratio(file, kb),
        _ => usage(),
    }
}
