//! `repro`: regenerate every table and figure of Burger, Goodman & Kägi
//! (ISCA 1996).
//!
//! ```text
//! repro [--scale test|small|full] [--jobs N] [--json DIR] <target>...
//!
//! targets: fig1 table1 table2 table3 params fig3 table6 table7 table8
//!          fig4 table9 extrapolate all
//! ```
//!
//! `--jobs N` (or the `MEMBW_JOBS` environment variable) sets the run
//! engine's thread count. Experiment output on stdout is byte-identical
//! at every setting; wall-clock and throughput accounting goes to
//! stderr after the targets finish.

use membw_bench::parse_scale;
use membw_core::analytic::pins::{dataset, Series};
use membw_core::report::{self, TargetTiming};
use membw_core::runner;
use membw_core::sim::{Experiment, MachineSpec};
use membw_core::workloads::{Scale, Suite};
use membw_core::{
    run_ablation, run_dram, run_epin, run_extrapolation, run_fig1, run_fig2, run_fig3, run_fig4,
    run_interference, run_speculation, run_swprefetch, run_table1, run_table2, run_table3,
    run_table7, run_table8, run_table9, AsciiPlot, Table,
};
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    scale: Scale,
    json_dir: Option<PathBuf>,
    targets: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut scale = Scale::Small;
    let mut json_dir = None;
    let mut targets = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = parse_scale(&v)?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a positive integer, got '{v}'"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer".to_string());
                }
                runner::set_jobs(n);
            }
            "--json" => {
                let v = args.next().ok_or("--json needs a directory")?;
                json_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!("usage: repro [--scale test|small|full] [--jobs N] [--json DIR] <target>...");
                println!("targets: fig1 table1 table2 table3 params fig3 table6 table7");
                println!("         table8 fig4 table9 epin extrapolate ablation interference");
                println!("         dram speculation swprefetch dump all");
                println!("--jobs N (default: MEMBW_JOBS or all cores) sets run-engine threads;");
                println!("stdout is byte-identical at every setting.");
                std::process::exit(0);
            }
            t if !t.starts_with('-') => targets.push(t.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Ok(Options {
        scale,
        json_dir,
        targets,
    })
}

fn emit(opts: &Options, name: &str, table: &Table, json: Option<String>) {
    println!("{}", table.render());
    if let (Some(dir), Some(body)) = (&opts.json_dir, json) {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, body).expect("write json");
        eprintln!("  [wrote {}]", path.display());
    }
}

fn params_table(suite: &str, spec_for: impl Fn(Experiment) -> MachineSpec) -> Table {
    let mut t = Table::new(
        format!("Tables 4-5: machine parameters ({suite})"),
        [
            "Exp", "Core", "RUU", "LSQ", "Bpred", "MHz", "L1", "L1 blk", "L2", "L2 blk", "L1 kind",
            "Prefetch",
        ]
        .map(String::from)
        .to_vec(),
    );
    for e in Experiment::ALL {
        let m = spec_for(e);
        t.row(vec![
            e.label().to_string(),
            format!("{:?}", m.core),
            m.ruu_slots.to_string(),
            m.lsq_entries.to_string(),
            m.bpred_entries.to_string(),
            m.cpu_mhz.to_string(),
            format!("{}KB", m.mem.l1_bytes / 1024),
            format!("{}B", m.mem.l1_block),
            format!("{}KB", m.mem.l2_bytes / 1024),
            format!("{}B", m.mem.l2_block),
            if m.mem.blocking {
                "blocking"
            } else {
                "lockup-free"
            }
            .to_string(),
            if m.mem.tagged_prefetch { "tagged" } else { "-" }.to_string(),
        ]);
    }
    t
}

/// Run `target`, recording one [`TargetTiming`] per leaf target (the
/// `all` meta-target records its members individually).
fn run_target(opts: &Options, target: &str, timings: &mut Vec<TargetTiming>) -> Result<(), String> {
    if target == "all" {
        for t in [
            "fig1",
            "table1",
            "fig2",
            "table2",
            "table3",
            "params",
            "table7",
            "table8",
            "fig4",
            "table9",
            "epin",
            "extrapolate",
            "ablation",
            "interference",
            "dram",
            "speculation",
            "swprefetch",
            "fig3",
        ] {
            run_target(opts, t, timings)?;
        }
        return Ok(());
    }
    let wall_start = Instant::now();
    let metrics_before = runner::metrics();
    let uops_before = report::uops_executed();
    run_leaf(opts, target)?;
    let delta = runner::metrics_delta(metrics_before, runner::metrics());
    timings.push(TargetTiming {
        target: target.to_string(),
        wall: wall_start.elapsed(),
        jobs: delta.jobs,
        busy: delta.busy(),
        uops: report::uops_executed() - uops_before,
    });
    Ok(())
}

fn run_leaf(opts: &Options, target: &str) -> Result<(), String> {
    let scale = opts.scale;
    match target {
        "fig1" => {
            let (res, table) = run_fig1::run();
            emit(
                opts,
                "fig1",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
            for (label, series) in [
                ("Figure 1a: pins vs year (log y)", Series::Pins),
                ("Figure 1b: MIPS/pin vs year (log y)", Series::MipsPerPin),
                (
                    "Figure 1c: MIPS/(pin MB/s) vs year (log y)",
                    Series::MipsPerBandwidth,
                ),
            ] {
                let pts: Vec<(f64, f64)> = dataset()
                    .iter()
                    .map(|pr| (f64::from(pr.year), series.value(pr)))
                    .collect();
                let plot = AsciiPlot::new(label, 60, 14)
                    .log_y()
                    .series('o', "processors", pts);
                println!("{}", plot.render());
            }
        }
        "table1" => {
            let (_, table) = run_table1::run();
            emit(opts, "table1", &table, None);
        }
        "table2" => {
            let (res, table) = run_table2::run(1024);
            emit(
                opts,
                "table2",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "table3" => {
            let (res, table) = run_table3::run(scale);
            emit(
                opts,
                "table3",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "params" => {
            println!("{}", params_table("SPEC92", MachineSpec::spec92).render());
            println!("{}", params_table("SPEC95", MachineSpec::spec95).render());
        }
        "fig2" => {
            let (res, table, plots) = run_fig2::run(12);
            emit(
                opts,
                "fig2",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
            for p in plots {
                println!("{}", p.render());
            }
        }
        "fig3" | "table6" => {
            for (suite, label) in [(Suite::Spec92, "SPEC92"), (Suite::Spec95, "SPEC95")] {
                let res = run_fig3::run_suite(suite, scale, &Experiment::ALL);
                if target == "fig3" {
                    let t = run_fig3::render(&res, &format!("Figure 3 ({label} benchmarks)"));
                    emit(
                        opts,
                        &format!("fig3_{}", label.to_lowercase()),
                        &t,
                        serde_json::to_string_pretty(&res).ok(),
                    );
                }
                let t6 = run_fig3::render_table6(&res);
                emit(opts, &format!("table6_{}", label.to_lowercase()), &t6, None);
            }
        }
        "table7" => {
            let (res, table) = run_table7::run(scale);
            emit(
                opts,
                "table7",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "table8" => {
            let (res, table) = run_table8::run(scale);
            emit(
                opts,
                "table8",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "fig4" => {
            let (panels, tables) = run_fig4::run(scale);
            for t in &tables {
                println!("{}", t.render());
            }
            for p in &panels {
                let mut plot = AsciiPlot::new(
                    format!(
                        "Figure 4 ({}): traffic (bytes) vs capacity, log-log",
                        p.name
                    ),
                    64,
                    16,
                )
                .log_log();
                let markers = ['1', '2', '3', '4', '5', '6', 'A', 'V'];
                for (c, m) in p.curves.iter().zip(markers) {
                    let pts: Vec<(f64, f64)> = c
                        .points
                        .iter()
                        .map(|&(s, t)| (s as f64, t as f64))
                        .collect();
                    plot = plot.series(m, c.label.clone(), pts);
                }
                println!("{}", plot.render());
            }
            if let Some(dir) = &opts.json_dir {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                let body = serde_json::to_string_pretty(&panels).map_err(|e| e.to_string())?;
                std::fs::write(dir.join("fig4.json"), body).map_err(|e| e.to_string())?;
            }
        }
        "table9" => {
            let (res, tables) = run_table9::run(scale);
            for t in &tables {
                println!("{}", t.render());
            }
            if let Some(dir) = &opts.json_dir {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                let body = serde_json::to_string_pretty(&res).map_err(|e| e.to_string())?;
                std::fs::write(dir.join("table9.json"), body).map_err(|e| e.to_string())?;
            }
        }
        "ablation" => {
            let (res, table) = run_ablation::run(scale, 16 * 1024);
            emit(
                opts,
                "ablation",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "dump" => {
            // Dump every benchmark's reference stream as .mwtr files.
            let dir = opts
                .json_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from("traces"));
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            use membw_core::trace::io::save_workload;
            use membw_core::workloads::{suite92, suite95};
            for b in suite92(scale).iter().chain(suite95(scale).iter()) {
                let path = dir.join(format!("{}.mwtr", b.name()));
                let n = save_workload(&b.workload(), &path).map_err(|e| e.to_string())?;
                println!("wrote {} ({n} refs)", path.display());
            }
        }
        "epin" => {
            let (res, table) = run_epin::run(scale);
            emit(
                opts,
                "epin",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "swprefetch" => {
            let (res, table) = run_swprefetch::run();
            emit(
                opts,
                "swprefetch",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "speculation" => {
            let (res, table) = run_speculation::run();
            emit(
                opts,
                "speculation",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "dram" => {
            let (res, table) = run_dram::run();
            emit(
                opts,
                "dram",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "interference" => {
            let (res, table) = run_interference::run(16 * 1024, 200);
            emit(
                opts,
                "interference",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        "extrapolate" => {
            let (res, table) = run_extrapolation::run();
            emit(
                opts,
                "extrapolate",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            );
        }
        other => return Err(format!("unknown target '{other}'")),
    }
    Ok(())
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut timings = Vec::new();
    for t in opts.targets.clone() {
        if let Err(e) = run_target(&opts, &t, &mut timings) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    if !timings.is_empty() {
        eprintln!();
        eprintln!(
            "{}",
            report::timing_table(&timings, runner::configured_jobs()).render()
        );
    }
}
