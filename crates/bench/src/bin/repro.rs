//! `repro`: regenerate every table and figure of Burger, Goodman & Kägi
//! (ISCA 1996).
//!
//! ```text
//! repro [--scale test|small|full] [--jobs N] [--json DIR]
//!       [--retries N] [--job-timeout SECS] [--deadline SECS]
//!       [--mem-budget MB] [--resume | --no-resume]
//!       [--checkpoint-dir DIR] [--audit off|warn|strict]
//!       [--sweep stack|direct] [--analytic off|assist|only] <target>...
//!
//! repro serve [--socket PATH | --listen tcp:PORT] [--max-inflight N]
//!             [--queue N] [--store DIR] [--checkpoint-dir DIR]
//!             [--jobs N] [--mem-budget MB] [--read-timeout-ms N]
//!
//! repro query [--socket PATH|tcp:HOST:PORT] [--scale S] [--sweep M]
//!             [--audit L] [--deadline-ms N] [--priority P] <target>...
//!
//! targets: fig1 table1 table2 table3 params fig3 table6 table7 table8
//!          fig4 table9 extrapolate all
//! ```
//!
//! `repro serve` keeps a resident daemon answering the same questions
//! over newline-delimited JSON (see `membw_core::service`), with
//! request coalescing, a crash-safe result store, backpressure, and a
//! SIGTERM drain; `repro query` is its line client. A query's stdout is
//! byte-identical to the CLI run of the same `(target, scale, sweep)`
//! because both sides print `membw_core::targets::render_target`.
//!
//! `--sweep` selects how the traffic suites (`fig4`, `table7`,
//! `table8`, `table9`) cover their capacity axes: `stack` (default)
//! runs the one-pass multi-configuration sweep engine, `direct` runs
//! one independent simulation per configuration. Output is
//! byte-identical between the modes; `direct` exists as the cross-check
//! oracle and the `MEMBW_SWEEP_VERIFY=1` environment variable makes a
//! `stack` run recompute every swept cell directly and report any
//! divergence through the auditor.
//!
//! `--analytic` selects the ECM fast path's role: `off` (default)
//! never consults the model and is byte-identical to earlier releases;
//! `assist` runs the normal simulation and additionally checks every
//! simulated cell of `fig3`/`table7`/`fig4` against the model's
//! prediction and error bound through the `analytic-bound` auditor
//! invariant (fatal under `--audit strict`; stdout unchanged); `only`
//! answers supported targets from trace signatures alone in
//! microseconds, with the model version and bounds printed in the
//! output (not byte-compatible with simulation, by design).
//!
//! `--jobs N` (or the `MEMBW_JOBS` environment variable) sets the run
//! engine's thread count. Experiment output on stdout is byte-identical
//! at every setting; wall-clock and throughput accounting goes to
//! stderr after the targets finish.
//!
//! The campaign is fault-tolerant: a job that panics or exceeds
//! `--job-timeout` fails alone (after `--retries` extra attempts), its
//! target is skipped, every other target still runs, a failure summary
//! lands on stderr, and the exit status is nonzero. Completed jobs are
//! checkpointed under `--checkpoint-dir` (default
//! `results/.checkpoint`); rerun with `--resume` to pick up an
//! interrupted campaign without recomputing finished jobs.
//!
//! The campaign is also interruptible: SIGINT/SIGTERM request a drain
//! (in-flight jobs cancel cooperatively, completed work flushes through
//! the durable checkpoint path, exit code 130; a second signal
//! force-exits), `--deadline SECS` bounds the whole invocation's wall
//! clock the same way (exit code 124), and `--mem-budget MB` (or
//! `MEMBW_MEM_BUDGET_MB`) keeps the invocation inside a memory budget
//! by degrading — trace-cache shrink, then record-streaming, then
//! serialized job admission — instead of OOMing. All three preserve
//! stdout byte-identity: a cancelled run resumed with `--resume`, or a
//! budgeted run, prints exactly what an undisturbed run prints.

use membw_bench::{parse_scale, validate_target, ALL_TARGETS};
use membw_core::analytic::ecm::{self, AnalyticMode};
use membw_core::audit;
use membw_core::fastpath;
use membw_core::report::{self, TargetTiming};
use membw_core::runner;
use membw_core::runner::persist;
use membw_core::runner::CheckpointConfig;
use membw_core::service::{ServiceRequest, ServiceResponse};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use membw_core::workloads::Scale;
use membw_core::MembwError;
use membw_serve::{client, serve, Endpoint, ResultStore, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    scale: Scale,
    json_dir: Option<PathBuf>,
    targets: Vec<String>,
    resume: bool,
    checkpoint_dir: PathBuf,
    deadline: Option<Duration>,
    sweep: SweepMode,
    analytic: AnalyticMode,
}

fn parse_args() -> Result<Options, String> {
    let mut scale = Scale::Small;
    let mut json_dir = None;
    let mut targets = Vec::new();
    let mut resume = false;
    let mut checkpoint_dir = PathBuf::from("results/.checkpoint");
    let mut deadline = None;
    let mut mem_budget_mb: Option<u64> = None;
    let mut sweep = SweepMode::default();
    let mut analytic = AnalyticMode::Off;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = parse_scale(&v)?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a positive integer, got '{v}'"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer".to_string());
                }
                runner::set_jobs(n);
            }
            "--json" => {
                let v = args.next().ok_or("--json needs a directory")?;
                json_dir = Some(PathBuf::from(v));
            }
            "--retries" => {
                let v = args.next().ok_or("--retries needs a count")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("--retries needs a non-negative integer, got '{v}'"))?;
                runner::set_retries(n);
            }
            "--job-timeout" => {
                let v = args.next().ok_or("--job-timeout needs seconds")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--job-timeout needs seconds, got '{v}'"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--job-timeout needs a positive number of seconds".to_string());
                }
                runner::set_job_timeout(Some(Duration::from_secs_f64(secs)));
            }
            "--deadline" => {
                let v = args.next().ok_or("--deadline needs seconds")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--deadline needs seconds, got '{v}'"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--deadline needs a positive number of seconds".to_string());
                }
                deadline = Some(Duration::from_secs_f64(secs));
            }
            "--mem-budget" => {
                let v = args.next().ok_or("--mem-budget needs whole MiB")?;
                let mb = runner::parse_mem_budget_mb(&v)
                    .map_err(|e| e.replace(runner::MEM_BUDGET_MB_ENV, "--mem-budget"))?;
                mem_budget_mb = Some(mb);
            }
            "--audit" => {
                let v = args
                    .next()
                    .ok_or("--audit needs a level (off|warn|strict)")?;
                let level: audit::AuditLevel = v.parse()?;
                audit::set_level(level);
            }
            "--sweep" => {
                let v = args.next().ok_or("--sweep needs a mode (stack|direct)")?;
                sweep = SweepMode::parse(&v)?;
            }
            "--analytic" => {
                let v = args
                    .next()
                    .ok_or("--analytic needs a mode (off|assist|only)")?;
                analytic = v.parse()?;
            }
            "--resume" => resume = true,
            "--no-resume" => resume = false,
            "--checkpoint-dir" => {
                let v = args.next().ok_or("--checkpoint-dir needs a directory")?;
                checkpoint_dir = PathBuf::from(v);
            }
            "--help" | "-h" => {
                println!("usage: repro [--scale test|small|full] [--jobs N] [--json DIR]");
                println!("             [--retries N] [--job-timeout SECS] [--deadline SECS]");
                println!("             [--mem-budget MB] [--resume|--no-resume]");
                println!("             [--checkpoint-dir DIR] [--audit off|warn|strict]");
                println!("             [--sweep stack|direct] [--analytic off|assist|only]");
                println!("             <target>...");
                println!("       repro serve [--socket PATH|--listen tcp:PORT] ... (see repro serve --help)");
                println!("       repro query [--socket PATH] <target>...         (see repro query --help)");
                println!("targets: fig1 table1 table2 table3 params fig3 table6 table7");
                println!("         table8 fig4 table9 epin extrapolate ablation interference");
                println!("         dram speculation swprefetch dump all");
                println!("--jobs N (default: MEMBW_JOBS or all cores) sets run-engine threads;");
                println!("stdout is byte-identical at every setting.");
                println!("--retries N retries a panicked job N more times (default 0;");
                println!("timed-out and cancelled jobs are never retried);");
                println!("--job-timeout SECS marks jobs failed past a per-job deadline;");
                println!("--deadline SECS drains the whole invocation at a wall-clock bound");
                println!("(finished work stays checkpointed; exit code 124);");
                println!(
                    "--mem-budget MB (or {}) bounds memory by degrading",
                    runner::MEM_BUDGET_MB_ENV
                );
                println!(
                    "(cache shrink -> record-streaming -> throttled admission; 0 = strictest);"
                );
                println!("--resume replays completed jobs archived under --checkpoint-dir");
                println!("(default results/.checkpoint) by a previous, possibly interrupted run.");
                println!("--audit LEVEL checks the paper's invariants on every target:");
                println!("off skips them, warn (default) reports violations on stderr,");
                println!("strict fails the target; a summary lands on stderr either way.");
                println!("--sweep MODE picks the traffic suites' capacity-axis engine:");
                println!("stack (default) = one-pass multi-configuration sweep engine,");
                println!("direct = one simulation per configuration; output is");
                println!(
                    "byte-identical either way, and {}=1 makes a stack",
                    membw_core::sweep::SWEEP_VERIFY_ENV
                );
                println!("run recompute every swept cell directly through the auditor.");
                println!("--analytic MODE sets the ECM fast path's role: off (default) never");
                println!("consults the model; assist also checks each simulated fig3/table7/fig4");
                println!("cell against the model's bound (analytic-bound invariant, fatal under");
                println!("--audit strict; stdout unchanged); only answers those targets from");
                println!("trace signatures in microseconds, bounds printed, no simulation.");
                println!(
                    "{} caps the in-memory trace cache (whole MiB; 0 disables caching).",
                    membw_core::trace::replay::TRACE_CACHE_MB_ENV
                );
                println!("SIGINT/SIGTERM request a graceful drain (second signal force-exits).");
                println!("exit codes: 0 ok, 1 target/job failures, 2 usage error,");
                println!("            124 deadline exceeded, 130 interrupted,");
                println!(
                    "            134 aborted at an injected {}=crash@K I/O point.",
                    runner::faultio::IO_FAULT_ENV
                );
                std::process::exit(0);
            }
            t if !t.starts_with('-') => targets.push(t.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // Reject malformed environment configuration up front, before any
    // target runs: the lazy readers would otherwise only warn and fall
    // back (or in the fault-injection case, silently no-op).
    if let Ok(v) = std::env::var(membw_core::trace::replay::TRACE_CACHE_MB_ENV) {
        membw_core::trace::replay::parse_cache_budget_mb(&v)?;
    }
    if let Ok(v) = std::env::var(runner::JOBS_ENV) {
        runner::parse_jobs(&v)?;
    }
    if let Ok(v) = std::env::var(membw_core::sweep::SWEEP_VERIFY_ENV) {
        membw_core::sweep::parse_verify(&v)?;
    }
    runner::validate_fault_env()?;
    if let Ok(v) = std::env::var(runner::MEM_BUDGET_MB_ENV) {
        let mb = runner::parse_mem_budget_mb(&v)?;
        // The flag wins over the environment when both are present.
        if mem_budget_mb.is_none() {
            mem_budget_mb = Some(mb);
        }
    }
    if let Some(mb) = mem_budget_mb {
        runner::set_mem_budget(Some(mb));
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    for t in &targets {
        validate_target(t)?;
    }
    if analytic == AnalyticMode::Only {
        // Reject up front: an analytic-only run must never silently
        // fall back to simulation for a target the model cannot answer.
        for t in &targets {
            if !fastpath::analytic_supported(t) {
                return Err(format!(
                    "--analytic only cannot answer target '{t}'; supported targets: {}",
                    fastpath::ANALYTIC_TARGETS.join(" ")
                ));
            }
        }
    }
    ecm::set_mode(analytic);
    Ok(Options {
        scale,
        json_dir,
        targets,
        resume,
        checkpoint_dir,
        deadline,
        sweep,
        analytic,
    })
}

/// Run one leaf target, recording one [`TargetTiming`] on success.
fn run_target(
    opts: &Options,
    target: &str,
    timings: &mut Vec<TargetTiming>,
) -> Result<(), MembwError> {
    let wall_start = Instant::now();
    let metrics_before = runner::metrics();
    let uops_before = report::uops_executed();
    run_leaf(opts, target)?;
    let delta = runner::metrics_delta(metrics_before, runner::metrics());
    timings.push(TargetTiming {
        target: target.to_string(),
        wall: wall_start.elapsed(),
        jobs: delta.jobs,
        busy: delta.busy(),
        uops: report::uops_executed() - uops_before,
    });
    Ok(())
}

fn run_leaf(opts: &Options, target: &str) -> Result<(), MembwError> {
    if opts.analytic == AnalyticMode::Only {
        // Microsecond path: answer from the ECM predictor and trace
        // signatures alone — no simulation, no trace arena. The output
        // is labelled with the model version and carries error bounds;
        // it is intentionally NOT byte-compatible with a simulated run.
        let render = fastpath::render_target_analytic(target, opts.scale)
            .expect("unsupported targets were rejected at argument parsing");
        print!("{}", render.rendered.stdout);
        eprintln!(
            "analytic: {target}: model {}, worst relative bound {:.2}",
            ecm::MODEL_VERSION,
            render.worst_rel
        );
        return Ok(());
    }
    if target == "dump" {
        // Dump every benchmark's reference stream as .mwtr files — the
        // one target with filesystem side effects instead of a
        // rendering, so it stays out of the shared renderer.
        let dir = opts
            .json_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("traces"));
        runner::faultio::create_dir_all(&dir)
            .map_err(|e| MembwError::io("create trace directory", dir.clone(), e))?;
        use membw_core::trace::io::save_workload;
        use membw_core::workloads::{suite92, suite95};
        for b in suite92(opts.scale).iter().chain(suite95(opts.scale).iter()) {
            let path = dir.join(format!("{}.mwtr", b.name()));
            let n = save_workload(&b.replayable(), &path).map_err(|e| MembwError::Trace {
                path: path.clone(),
                source: e,
            })?;
            println!("wrote {} ({n} refs)", path.display());
        }
        return Ok(());
    }
    let rendered = targets::render_target(target, opts.scale, opts.sweep)?;
    print!("{}", rendered.stdout);
    if let Some(dir) = &opts.json_dir {
        runner::faultio::create_dir_all(dir)
            .map_err(|e| MembwError::io("create JSON directory", dir.clone(), e))?;
        for a in &rendered.artifacts {
            let path = dir.join(format!("{}.json", a.name));
            // Archives go through the same tmp→fsync→rename path as
            // checkpoints: a crash mid-write can leave a stray .tmp,
            // never a torn .json that parses as a truncated result.
            persist::write_atomic(&path, a.json.as_bytes())
                .map_err(|(step, p, e)| MembwError::io(step, p, e))?;
            eprintln!("  [wrote {}]", path.display());
        }
    }
    Ok(())
}

fn serve_usage() {
    println!("usage: repro serve [--socket PATH | --listen tcp:PORT|tcp:HOST:PORT]");
    println!("                   [--max-inflight N] [--queue N] [--conn-limit N]");
    println!("                   [--store DIR] [--checkpoint-dir DIR]");
    println!("                   [--jobs N] [--mem-budget MB] [--read-timeout-ms N]");
    println!("                   [--analytic off|assist] [--supervise]");
    println!("Resident daemon speaking newline-delimited JSON requests");
    println!("  {{\"target\":\"table7\",\"scale\":\"small\",\"sweep\":\"stack\",");
    println!("    \"audit\":\"warn\",\"deadline_ms\":0,\"priority\":0}}");
    println!("over a Unix socket (default results/membw.sock) or TCP.");
    println!("--max-inflight N requests render concurrently (default 2; each still");
    println!("parallelizes its own job matrix under --jobs); --queue N more wait");
    println!("FIFO-within-priority before clients get a busy response.");
    println!("Completed renders persist (checksummed, tmp+fsync+rename) under");
    println!("--store (default results/.serve-store): a killed-and-restarted");
    println!("daemon answers warm requests from the store without recomputing.");
    println!("SIGTERM drains gracefully: in-flight work checkpoints under");
    println!("--checkpoint-dir, new clients get a draining response, exit 0.");
    println!("--analytic assist turns on the ECM fast lane: requests whose model");
    println!("bound fits the client's tolerance (analytic_rel_permille, default");
    println!("600; 0 opts out) are answered in microseconds with provenance");
    println!("(source=analytic, model, bound) instead of queueing a simulation,");
    println!("and simulated renders audit the model via analytic-bound. The");
    println!("daemon always keeps the simulation fallback, so there is no");
    println!("'only' mode. Query target 'stats' for triage counters.");
    println!("--supervise runs the daemon under a restarting parent: a crashed");
    println!("daemon (SIGKILL, abort, injected crash@K) is respawned with");
    println!("bounded deterministic backoff (50ms doubling, cap 2s); 5 fast");
    println!("crashes in a row give up loudly with exit 1. Restarted children");
    println!("run with MEMBW_NET_FAULT/MEMBW_IO_FAULT cleared (injected faults");
    println!("test one generation, not the healed service) and report their");
    println!("generation as the stats counter supervisor-restarts.");
    println!("exit codes: 0 clean drain, 1 fatal/crash-loop give-up, 2 usage,");
    println!("            130 interrupted (SIGTERM/SIGINT), 134 crash@K abort.");
}

/// `repro serve --supervise`: spawn and babysit `repro serve` (same
/// argv minus the flag) per the supervision state machine in
/// [`membw_serve::supervisor`].
fn cmd_serve_supervised(argv: &[String]) -> i32 {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot locate the repro binary to supervise: {e}");
            return 1;
        }
    };
    let child_args: Vec<String> = argv.iter().filter(|a| *a != "--supervise").cloned().collect();
    // The parent validates nothing itself: a config typo makes the
    // child exit 2 and the supervisor propagates it without looping.
    runner::install_signal_drain();
    let cancel = runner::global_cancel_token();
    membw_serve::supervisor::supervise(
        |restarts| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("serve");
            cmd.args(&child_args);
            if restarts > 0 {
                // An injected fault plan tests one daemon generation;
                // the restarted service must come back clean, or a
                // deterministic crash@K would re-fire at the same point
                // every generation and the loop detector would give up
                // on a fault that was, by construction, transient.
                cmd.env_remove(membw_serve::NET_FAULT_ENV);
                cmd.env_remove(runner::faultio::IO_FAULT_ENV);
            }
            cmd
        },
        &membw_serve::SupervisorConfig::default(),
        &cancel,
    )
}

fn cmd_serve(argv: &[String]) -> i32 {
    if argv.iter().any(|a| a == "--supervise") {
        return cmd_serve_supervised(argv);
    }
    let mut endpoint = Endpoint::Unix(PathBuf::from("results/membw.sock"));
    let mut config = ServeConfig::default();
    let mut store_dir = PathBuf::from("results/.serve-store");
    let mut checkpoint_dir = PathBuf::from("results/.checkpoint");
    let mut mem_budget_mb: Option<u64> = None;
    let mut args = argv.iter();
    let parsed = (|| -> Result<(), String> {
        while let Some(a) = args.next() {
            match a.as_str() {
                "--socket" => {
                    let v = args.next().ok_or("--socket needs a path")?;
                    endpoint = Endpoint::Unix(PathBuf::from(v));
                }
                "--listen" => {
                    let v = args
                        .next()
                        .ok_or("--listen needs tcp:PORT or tcp:HOST:PORT")?;
                    endpoint = Endpoint::parse(v)?;
                }
                "--max-inflight" => {
                    let v = args.next().ok_or("--max-inflight needs a count")?;
                    config.max_inflight =
                        v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                            format!("--max-inflight needs a positive integer, got '{v}'")
                        })?;
                }
                "--queue" => {
                    let v = args.next().ok_or("--queue needs a count")?;
                    config.queue_bound =
                        v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                            format!("--queue needs a positive integer, got '{v}'")
                        })?;
                }
                "--conn-limit" => {
                    let v = args.next().ok_or("--conn-limit needs a count")?;
                    config.conn_limit =
                        v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                            format!("--conn-limit needs a positive integer, got '{v}'")
                        })?;
                }
                "--read-timeout-ms" => {
                    let v = args.next().ok_or("--read-timeout-ms needs milliseconds")?;
                    let ms = v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        format!("--read-timeout-ms needs positive milliseconds, got '{v}'")
                    })?;
                    config.read_timeout = Duration::from_millis(ms);
                }
                "--store" => {
                    let v = args.next().ok_or("--store needs a directory")?;
                    store_dir = PathBuf::from(v);
                }
                "--checkpoint-dir" => {
                    let v = args.next().ok_or("--checkpoint-dir needs a directory")?;
                    checkpoint_dir = PathBuf::from(v);
                }
                "--jobs" => {
                    let v = args.next().ok_or("--jobs needs a count")?;
                    let n = v
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| format!("--jobs needs a positive integer, got '{v}'"))?;
                    runner::set_jobs(n);
                }
                "--mem-budget" => {
                    let v = args.next().ok_or("--mem-budget needs whole MiB")?;
                    let mb = runner::parse_mem_budget_mb(v)
                        .map_err(|e| e.replace(runner::MEM_BUDGET_MB_ENV, "--mem-budget"))?;
                    mem_budget_mb = Some(mb);
                }
                "--analytic" => {
                    let v = args.next().ok_or("--analytic needs a mode (off|assist)")?;
                    config.analytic = match v.as_str() {
                        "off" => false,
                        "assist" => true,
                        // The daemon must always be able to fall back to a
                        // real simulation for loose bounds and unsupported
                        // targets, so `only` is not a serve mode.
                        other => {
                            return Err(format!(
                                "serve --analytic supports off|assist, got '{other}'"
                            ))
                        }
                    };
                }
                "--help" | "-h" => {
                    serve_usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown serve flag {other}")),
            }
        }
        if let Ok(v) = std::env::var(runner::JOBS_ENV) {
            runner::parse_jobs(&v)?;
        }
        // The serve driver honors the chaos variable too, so validate
        // the chained registry (runner hooks + MEMBW_SERVE_FAULT).
        membw_serve::chaos::validate_env()?;
        if let Ok(v) = std::env::var(runner::MEM_BUDGET_MB_ENV) {
            let mb = runner::parse_mem_budget_mb(&v)?;
            if mem_budget_mb.is_none() {
                mem_budget_mb = Some(mb);
            }
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("error: {e}");
        return 2;
    }
    if let Some(mb) = mem_budget_mb {
        runner::set_mem_budget(Some(mb));
    }
    if config.analytic {
        // Simulated renders on an assist daemon carry the same
        // analytic-bound audits as `repro --analytic assist` runs.
        ecm::set_mode(AnalyticMode::Assist);
        eprintln!(
            "serve: analytic fast lane enabled (model {})",
            ecm::MODEL_VERSION
        );
    }
    // SIGINT/SIGTERM request the drain; a second signal force-exits.
    runner::install_signal_drain();
    // Requests always resume from checkpoints: an interrupted render
    // picks up where the drained daemon left off.
    runner::set_checkpoint(Some(CheckpointConfig {
        root: checkpoint_dir,
        resume: true,
    }));
    let store = match ResultStore::open(&store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: cannot open result store {}: {e}",
                store_dir.display()
            );
            return 1;
        }
    };
    let listener = match endpoint.listen() {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", endpoint.display());
            return 1;
        }
    };
    // Warn-only: a daemon without a pidfile still serves, but the
    // orphaned-tmp sweeps lose their liveness cross-check for it.
    match membw_serve::net::write_pidfile(&endpoint) {
        Ok(Some(path)) => eprintln!("serve: pid {} at {}", std::process::id(), path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: cannot write pidfile: {e}"),
    }
    eprintln!(
        "serve: listening on {} (max-inflight {}, queue {}, store {})",
        endpoint.display(),
        config.max_inflight,
        config.queue_bound,
        store_dir.display()
    );
    let server = Arc::new(Server::new(config, store));
    let cancel = runner::global_cancel_token();
    let served = match serve(&server, listener, &cancel) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            return 1;
        }
    };
    if let Some(path) = endpoint.socket_path() {
        let _ = runner::faultio::remove_file(path);
    }
    membw_serve::net::remove_pidfile(&endpoint);
    eprintln!("serve: drained cleanly after {served} connection(s)");
    0
}

fn query_usage() {
    println!("usage: repro query [--socket PATH|tcp:HOST:PORT] [--scale test|small|full]");
    println!("                   [--sweep stack|direct] [--audit off|warn|strict]");
    println!("                   [--deadline-ms N] [--priority P] [--retries N]");
    println!("                   [--analytic-rel PERMILLE] <target>...");
    println!("Sends one request per target to a repro serve daemon and prints each");
    println!("ok response's stdout payload (byte-identical to the CLI run);");
    println!("source/job accounting goes to stderr. Analytic answers also report");
    println!("their model version and error bound on stderr.");
    println!("--analytic-rel PERMILLE is the widest model bound (permille of the");
    println!("prediction) this client accepts from the daemon's analytic fast");
    println!("lane; 0 demands real simulation (default 600).");
    println!("The pseudo-target 'stats' returns the daemon's triage counters.");
    println!("--retries N retries retryable outcomes (busy, transient errors,");
    println!("torn replies, connection resets — e.g. a daemon restarting under");
    println!("serve --supervise) up to N times with bounded exponential backoff");
    println!("(50ms doubling, cap 2s); the converged answer is byte-identical");
    println!("to a fault-free run. 0 (default) fails fast on the first error.");
    println!("exit codes: 0 ok, 1 error response or transport failure,");
    println!("            2 usage error, 3 busy, 4 draining.");
}

fn cmd_query(argv: &[String]) -> i32 {
    let mut endpoint_spec = "results/membw.sock".to_string();
    let mut template = ServiceRequest::new("");
    let mut targets_req: Vec<String> = Vec::new();
    let mut retries: u32 = 0;
    let mut args = argv.iter();
    let parsed = (|| -> Result<(), String> {
        while let Some(a) = args.next() {
            match a.as_str() {
                "--socket" => {
                    endpoint_spec = args
                        .next()
                        .ok_or("--socket needs a path or tcp: spec")?
                        .clone();
                }
                "--scale" => {
                    template.scale = args.next().ok_or("--scale needs a value")?.clone();
                }
                "--sweep" => {
                    template.sweep = args.next().ok_or("--sweep needs a mode")?.clone();
                }
                "--audit" => {
                    template.audit = args.next().ok_or("--audit needs a level")?.clone();
                }
                "--deadline-ms" => {
                    let v = args.next().ok_or("--deadline-ms needs milliseconds")?;
                    template.deadline_ms = v
                        .parse::<u64>()
                        .map_err(|_| format!("--deadline-ms needs milliseconds, got '{v}'"))?;
                }
                "--priority" => {
                    let v = args.next().ok_or("--priority needs 0-255")?;
                    template.priority = v
                        .parse::<u8>()
                        .map_err(|_| format!("--priority needs 0-255, got '{v}'"))?;
                }
                "--analytic-rel" => {
                    let v = args
                        .next()
                        .ok_or("--analytic-rel needs permille (0 = simulate)")?;
                    template.analytic_rel_permille = v
                        .parse::<u32>()
                        .map_err(|_| format!("--analytic-rel needs permille, got '{v}'"))?;
                }
                "--retries" => {
                    let v = args.next().ok_or("--retries needs a count")?;
                    retries = v
                        .parse::<u32>()
                        .map_err(|_| format!("--retries needs a count, got '{v}'"))?;
                }
                "--help" | "-h" => {
                    query_usage();
                    std::process::exit(0);
                }
                t if !t.starts_with('-') => targets_req.push(t.to_string()),
                other => return Err(format!("unknown query flag {other}")),
            }
        }
        if targets_req.is_empty() {
            return Err("query needs at least one target".to_string());
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("error: {e}");
        return 2;
    }
    let endpoint = match Endpoint::parse(&endpoint_spec) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    for target in &targets_req {
        let mut req = template.clone();
        req.target = target.clone();
        let resp = if retries == 0 {
            match client::query(&endpoint, &req, None) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!(
                        "error: query '{target}' against {}: {e}",
                        endpoint.display()
                    );
                    return 1;
                }
            }
        } else {
            let policy = client::Backoff {
                attempts: retries.saturating_add(1),
                ..client::Backoff::default()
            };
            match client::query_with_backoff(&endpoint, &req, None, &policy) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!(
                        "error: query '{target}' against {}: {e}",
                        endpoint.display()
                    );
                    return 1;
                }
            }
        };
        match resp {
            ServiceResponse::Ok {
                source,
                fnv64,
                jobs,
                resumed,
                model,
                bound_rel_permille,
                stdout,
                ..
            } => {
                let actual = format!("{:016x}", persist::fnv64(&stdout));
                if actual != fnv64 {
                    eprintln!(
                        "error: query '{target}': response checksum mismatch \
                         (claimed {fnv64}, payload hashes to {actual})"
                    );
                    return 1;
                }
                print!("{stdout}");
                match (model, bound_rel_permille) {
                    (Some(model), Some(bound)) => eprintln!(
                        "query: {target}: source: {source} (model {model}, \
                         bound {bound} permille)"
                    ),
                    _ => eprintln!(
                        "query: {target}: source: {source} ({jobs} job(s), {resumed} resumed)"
                    ),
                }
            }
            ServiceResponse::Stats(stats) => {
                println!(
                    "stats: analytic {} simulated {} store {} coalesced {} rejected {} \
                     store-hit {} permille quarantined {} retention-dropped {} \
                     save-failures {} net-timeouts {} oversize-rejected {} \
                     malformed-rejected {} reply-aborted {} supervisor-restarts {}",
                    stats.analytic,
                    stats.simulated,
                    stats.store,
                    stats.coalesced,
                    stats.rejected,
                    stats.store_hit_permille(),
                    stats.quarantined,
                    stats.retention_dropped,
                    stats.save_failures,
                    stats.net_timeouts,
                    stats.oversize_rejected,
                    stats.malformed_rejected,
                    stats.reply_aborted,
                    stats.supervisor_restarts
                );
            }
            ServiceResponse::Busy { queued, bound } => {
                eprintln!("query: {target}: busy ({queued} queued, bound {bound}); retry later");
                return 3;
            }
            ServiceResponse::Draining => {
                eprintln!("query: {target}: daemon is draining; retry after restart");
                return 4;
            }
            ServiceResponse::Error {
                kind,
                message,
                cell,
                retry_after_ms,
            } => {
                match cell {
                    Some(cell) => {
                        eprintln!("error: query '{target}': [{kind}] {message} (cell: {cell})");
                    }
                    None => eprintln!("error: query '{target}': [{kind}] {message}"),
                }
                if let Some(ms) = retry_after_ms {
                    eprintln!("query: {target}: transient; retry after {ms} ms");
                }
                return 1;
            }
        }
    }
    0
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => std::process::exit(cmd_serve(&argv[1..])),
        Some("query") => std::process::exit(cmd_query(&argv[1..])),
        _ => {}
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // From here on SIGINT/SIGTERM request a drain instead of killing the
    // process; a second signal force-exits with code 130.
    runner::install_signal_drain();
    let cancel = runner::global_cancel_token();
    if let Some(d) = opts.deadline {
        cancel.set_deadline(d);
    }
    runner::set_checkpoint(Some(CheckpointConfig {
        root: opts.checkpoint_dir.clone(),
        resume: opts.resume,
    }));
    let leaves: Vec<&str> = opts
        .targets
        .iter()
        .flat_map(|t| {
            if t == "all" {
                ALL_TARGETS.to_vec()
            } else {
                vec![t.as_str()]
            }
        })
        .collect();
    let mut timings = Vec::new();
    let mut failed_targets: Vec<String> = Vec::new();
    let mut skipped_targets: Vec<String> = Vec::new();
    for t in leaves {
        // Once a drain is requested (signal or deadline) no further
        // target starts; already-finished targets keep their stdout.
        if cancel.is_cancelled() {
            skipped_targets.push(t.to_string());
            continue;
        }
        // A failed target never aborts the campaign: report it on
        // stderr (stdout stays byte-identical for healthy targets) and
        // keep going.
        if let Err(e) = run_target(&opts, t, &mut timings) {
            failed_targets.push(t.to_string());
            eprintln!("error: target '{t}': {e}");
            let jobs = e.failed_jobs();
            if !jobs.is_empty() {
                eprintln!("{}", report::failure_table(t, jobs).render());
            }
        }
    }
    if !timings.is_empty() {
        eprintln!();
        eprintln!(
            "{}",
            report::timing_table(&timings, runner::configured_jobs()).render()
        );
    }
    let audit_summary = audit::summary();
    if audit_summary.targets > 0 || audit::configured_level() != audit::AuditLevel::Off {
        let quarantined = runner::quarantined_artifacts();
        let trace_failures = membw_core::trace::TraceCache::global()
            .stats()
            .verify_failures;
        eprintln!(
            "audit[{}]: {} check(s) across {} target(s), {} violation(s); \
             {} artifact(s) quarantined, {} cached trace(s) failed verification",
            audit::configured_level().as_str(),
            audit_summary.checks,
            audit_summary.targets,
            audit_summary.violations,
            quarantined,
            trace_failures,
        );
    }
    let gov = runner::global_governor();
    if gov.limited() {
        let s = gov.stats();
        eprintln!(
            "governor[{} MiB]: finished at level {}; {} escalation event(s), \
             {} forced eviction(s), {} throttled admission(s)",
            s.budget_bytes.unwrap_or(0) / (1024 * 1024),
            s.level,
            s.events,
            s.forced_evictions,
            s.throttled_admissions,
        );
    }
    if let Some(reason) = cancel.cancel_reason() {
        // Partial-run summary: what finished, what the drain cut short,
        // and how to pick the campaign back up.
        let cancelled_jobs = runner::metrics().cancelled;
        eprintln!(
            "repro: cancelled ({reason}): {} target(s) completed, {} failed or cut short \
             ({} job(s) cancelled in flight), {} never started; completed jobs are \
             checkpointed under {} — rerun with --resume to finish",
            timings.len(),
            failed_targets.len(),
            cancelled_jobs,
            skipped_targets.len(),
            opts.checkpoint_dir.display()
        );
        std::process::exit(match reason {
            runner::CancelReason::Interrupted => 130,
            runner::CancelReason::DeadlineExceeded => 124,
        });
    }
    if !failed_targets.is_empty() {
        eprintln!(
            "repro: {} target(s) failed: {}; completed jobs are checkpointed under {} — rerun with --resume to reuse them",
            failed_targets.len(),
            failed_targets.join(", "),
            opts.checkpoint_dir.display()
        );
        std::process::exit(1);
    }
}
