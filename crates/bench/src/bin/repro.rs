//! `repro`: regenerate every table and figure of Burger, Goodman & Kägi
//! (ISCA 1996).
//!
//! ```text
//! repro [--scale test|small|full] [--jobs N] [--json DIR]
//!       [--retries N] [--job-timeout SECS] [--deadline SECS]
//!       [--mem-budget MB] [--resume | --no-resume]
//!       [--checkpoint-dir DIR] [--audit off|warn|strict]
//!       [--sweep stack|direct] <target>...
//!
//! targets: fig1 table1 table2 table3 params fig3 table6 table7 table8
//!          fig4 table9 extrapolate all
//! ```
//!
//! `--sweep` selects how the traffic suites (`fig4`, `table7`,
//! `table8`, `table9`) cover their capacity axes: `stack` (default)
//! runs the one-pass multi-configuration sweep engine, `direct` runs
//! one independent simulation per configuration. Output is
//! byte-identical between the modes; `direct` exists as the cross-check
//! oracle and the `MEMBW_SWEEP_VERIFY=1` environment variable makes a
//! `stack` run recompute every swept cell directly and report any
//! divergence through the auditor.
//!
//! `--jobs N` (or the `MEMBW_JOBS` environment variable) sets the run
//! engine's thread count. Experiment output on stdout is byte-identical
//! at every setting; wall-clock and throughput accounting goes to
//! stderr after the targets finish.
//!
//! The campaign is fault-tolerant: a job that panics or exceeds
//! `--job-timeout` fails alone (after `--retries` extra attempts), its
//! target is skipped, every other target still runs, a failure summary
//! lands on stderr, and the exit status is nonzero. Completed jobs are
//! checkpointed under `--checkpoint-dir` (default
//! `results/.checkpoint`); rerun with `--resume` to pick up an
//! interrupted campaign without recomputing finished jobs.
//!
//! The campaign is also interruptible: SIGINT/SIGTERM request a drain
//! (in-flight jobs cancel cooperatively, completed work flushes through
//! the durable checkpoint path, exit code 130; a second signal
//! force-exits), `--deadline SECS` bounds the whole invocation's wall
//! clock the same way (exit code 124), and `--mem-budget MB` (or
//! `MEMBW_MEM_BUDGET_MB`) keeps the invocation inside a memory budget
//! by degrading — trace-cache shrink, then record-streaming, then
//! serialized job admission — instead of OOMing. All three preserve
//! stdout byte-identity: a cancelled run resumed with `--resume`, or a
//! budgeted run, prints exactly what an undisturbed run prints.

use membw_bench::{parse_scale, validate_target, ALL_TARGETS};
use membw_core::audit;
use membw_core::sweep::SweepMode;
use membw_core::analytic::pins::{dataset, Series};
use membw_core::report::{self, TargetTiming};
use membw_core::runner;
use membw_core::runner::CheckpointConfig;
use membw_core::MembwError;
use membw_core::sim::{Experiment, MachineSpec};
use membw_core::workloads::{Scale, Suite};
use membw_core::{
    run_ablation, run_dram, run_epin, run_extrapolation, run_fig1, run_fig2, run_fig3, run_fig4,
    run_interference, run_speculation, run_swprefetch, run_table1, run_table2, run_table3,
    run_table7, run_table8, run_table9, AsciiPlot, Table,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Options {
    scale: Scale,
    json_dir: Option<PathBuf>,
    targets: Vec<String>,
    resume: bool,
    checkpoint_dir: PathBuf,
    deadline: Option<Duration>,
    sweep: SweepMode,
}

fn parse_args() -> Result<Options, String> {
    let mut scale = Scale::Small;
    let mut json_dir = None;
    let mut targets = Vec::new();
    let mut resume = false;
    let mut checkpoint_dir = PathBuf::from("results/.checkpoint");
    let mut deadline = None;
    let mut mem_budget_mb: Option<u64> = None;
    let mut sweep = SweepMode::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = parse_scale(&v)?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a positive integer, got '{v}'"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer".to_string());
                }
                runner::set_jobs(n);
            }
            "--json" => {
                let v = args.next().ok_or("--json needs a directory")?;
                json_dir = Some(PathBuf::from(v));
            }
            "--retries" => {
                let v = args.next().ok_or("--retries needs a count")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("--retries needs a non-negative integer, got '{v}'"))?;
                runner::set_retries(n);
            }
            "--job-timeout" => {
                let v = args.next().ok_or("--job-timeout needs seconds")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--job-timeout needs seconds, got '{v}'"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--job-timeout needs a positive number of seconds".to_string());
                }
                runner::set_job_timeout(Some(Duration::from_secs_f64(secs)));
            }
            "--deadline" => {
                let v = args.next().ok_or("--deadline needs seconds")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--deadline needs seconds, got '{v}'"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--deadline needs a positive number of seconds".to_string());
                }
                deadline = Some(Duration::from_secs_f64(secs));
            }
            "--mem-budget" => {
                let v = args.next().ok_or("--mem-budget needs whole MiB")?;
                let mb = runner::parse_mem_budget_mb(&v)
                    .map_err(|e| e.replace(runner::MEM_BUDGET_MB_ENV, "--mem-budget"))?;
                mem_budget_mb = Some(mb);
            }
            "--audit" => {
                let v = args.next().ok_or("--audit needs a level (off|warn|strict)")?;
                let level: audit::AuditLevel = v.parse()?;
                audit::set_level(level);
            }
            "--sweep" => {
                let v = args.next().ok_or("--sweep needs a mode (stack|direct)")?;
                sweep = SweepMode::parse(&v)?;
            }
            "--resume" => resume = true,
            "--no-resume" => resume = false,
            "--checkpoint-dir" => {
                let v = args.next().ok_or("--checkpoint-dir needs a directory")?;
                checkpoint_dir = PathBuf::from(v);
            }
            "--help" | "-h" => {
                println!("usage: repro [--scale test|small|full] [--jobs N] [--json DIR]");
                println!("             [--retries N] [--job-timeout SECS] [--deadline SECS]");
                println!("             [--mem-budget MB] [--resume|--no-resume]");
                println!("             [--checkpoint-dir DIR] [--audit off|warn|strict]");
                println!("             [--sweep stack|direct] <target>...");
                println!("targets: fig1 table1 table2 table3 params fig3 table6 table7");
                println!("         table8 fig4 table9 epin extrapolate ablation interference");
                println!("         dram speculation swprefetch dump all");
                println!("--jobs N (default: MEMBW_JOBS or all cores) sets run-engine threads;");
                println!("stdout is byte-identical at every setting.");
                println!("--retries N retries a panicked job N more times (default 0;");
                println!("timed-out and cancelled jobs are never retried);");
                println!("--job-timeout SECS marks jobs failed past a per-job deadline;");
                println!("--deadline SECS drains the whole invocation at a wall-clock bound");
                println!("(finished work stays checkpointed; exit code 124);");
                println!(
                    "--mem-budget MB (or {}) bounds memory by degrading",
                    runner::MEM_BUDGET_MB_ENV
                );
                println!("(cache shrink -> record-streaming -> throttled admission; 0 = strictest);");
                println!("--resume replays completed jobs archived under --checkpoint-dir");
                println!("(default results/.checkpoint) by a previous, possibly interrupted run.");
                println!("--audit LEVEL checks the paper's invariants on every target:");
                println!("off skips them, warn (default) reports violations on stderr,");
                println!("strict fails the target; a summary lands on stderr either way.");
                println!("--sweep MODE picks the traffic suites' capacity-axis engine:");
                println!("stack (default) = one-pass multi-configuration sweep engine,");
                println!("direct = one simulation per configuration; output is");
                println!(
                    "byte-identical either way, and {}=1 makes a stack",
                    membw_core::sweep::SWEEP_VERIFY_ENV
                );
                println!("run recompute every swept cell directly through the auditor.");
                println!(
                    "{} caps the in-memory trace cache (whole MiB; 0 disables caching).",
                    membw_core::trace::replay::TRACE_CACHE_MB_ENV
                );
                println!("SIGINT/SIGTERM request a graceful drain (second signal force-exits).");
                println!("exit codes: 0 ok, 1 target/job failures, 2 usage error,");
                println!("            124 deadline exceeded, 130 interrupted.");
                std::process::exit(0);
            }
            t if !t.starts_with('-') => targets.push(t.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // Reject malformed environment configuration up front, before any
    // target runs: the lazy readers would otherwise only warn and fall
    // back (or in the fault-injection case, silently no-op).
    if let Ok(v) = std::env::var(membw_core::trace::replay::TRACE_CACHE_MB_ENV) {
        membw_core::trace::replay::parse_cache_budget_mb(&v)?;
    }
    if let Ok(v) = std::env::var(runner::JOBS_ENV) {
        runner::parse_jobs(&v)?;
    }
    if let Ok(v) = std::env::var(membw_core::sweep::SWEEP_VERIFY_ENV) {
        membw_core::sweep::parse_verify(&v)?;
    }
    runner::validate_fault_env()?;
    if let Ok(v) = std::env::var(runner::MEM_BUDGET_MB_ENV) {
        let mb = runner::parse_mem_budget_mb(&v)?;
        // The flag wins over the environment when both are present.
        if mem_budget_mb.is_none() {
            mem_budget_mb = Some(mb);
        }
    }
    if let Some(mb) = mem_budget_mb {
        runner::set_mem_budget(Some(mb));
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    for t in &targets {
        validate_target(t)?;
    }
    Ok(Options {
        scale,
        json_dir,
        targets,
        resume,
        checkpoint_dir,
        deadline,
        sweep,
    })
}

fn emit(opts: &Options, name: &str, table: &Table, json: Option<String>) -> Result<(), MembwError> {
    println!("{}", table.render());
    if let (Some(dir), Some(body)) = (&opts.json_dir, json) {
        std::fs::create_dir_all(dir)
            .map_err(|e| MembwError::io("create JSON directory", dir.clone(), e))?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, body)
            .map_err(|e| MembwError::io("write JSON archive", path.clone(), e))?;
        eprintln!("  [wrote {}]", path.display());
    }
    Ok(())
}

fn params_table(suite: &str, spec_for: impl Fn(Experiment) -> MachineSpec) -> Table {
    let mut t = Table::new(
        format!("Tables 4-5: machine parameters ({suite})"),
        [
            "Exp", "Core", "RUU", "LSQ", "Bpred", "MHz", "L1", "L1 blk", "L2", "L2 blk", "L1 kind",
            "Prefetch",
        ]
        .map(String::from)
        .to_vec(),
    );
    for e in Experiment::ALL {
        let m = spec_for(e);
        t.row(vec![
            e.label().to_string(),
            format!("{:?}", m.core),
            m.ruu_slots.to_string(),
            m.lsq_entries.to_string(),
            m.bpred_entries.to_string(),
            m.cpu_mhz.to_string(),
            format!("{}KB", m.mem.l1_bytes / 1024),
            format!("{}B", m.mem.l1_block),
            format!("{}KB", m.mem.l2_bytes / 1024),
            format!("{}B", m.mem.l2_block),
            if m.mem.blocking {
                "blocking"
            } else {
                "lockup-free"
            }
            .to_string(),
            if m.mem.tagged_prefetch { "tagged" } else { "-" }.to_string(),
        ]);
    }
    t
}

/// Run one leaf target, recording one [`TargetTiming`] on success.
fn run_target(
    opts: &Options,
    target: &str,
    timings: &mut Vec<TargetTiming>,
) -> Result<(), MembwError> {
    let wall_start = Instant::now();
    let metrics_before = runner::metrics();
    let uops_before = report::uops_executed();
    run_leaf(opts, target)?;
    let delta = runner::metrics_delta(metrics_before, runner::metrics());
    timings.push(TargetTiming {
        target: target.to_string(),
        wall: wall_start.elapsed(),
        jobs: delta.jobs,
        busy: delta.busy(),
        uops: report::uops_executed() - uops_before,
    });
    Ok(())
}

fn run_leaf(opts: &Options, target: &str) -> Result<(), MembwError> {
    let scale = opts.scale;
    match target {
        "fig1" => {
            let (res, table) = run_fig1::run()?;
            emit(
                opts,
                "fig1",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
            for (label, series) in [
                ("Figure 1a: pins vs year (log y)", Series::Pins),
                ("Figure 1b: MIPS/pin vs year (log y)", Series::MipsPerPin),
                (
                    "Figure 1c: MIPS/(pin MB/s) vs year (log y)",
                    Series::MipsPerBandwidth,
                ),
            ] {
                let pts: Vec<(f64, f64)> = dataset()
                    .iter()
                    .map(|pr| (f64::from(pr.year), series.value(pr)))
                    .collect();
                let plot = AsciiPlot::new(label, 60, 14)
                    .log_y()
                    .series('o', "processors", pts);
                println!("{}", plot.render());
            }
        }
        "table1" => {
            let (_, table) = run_table1::run()?;
            emit(opts, "table1", &table, None)?;
        }
        "table2" => {
            let (res, table) = run_table2::run(1024)?;
            emit(
                opts,
                "table2",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "table3" => {
            let (res, table) = run_table3::run(scale)?;
            emit(
                opts,
                "table3",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "params" => {
            println!("{}", params_table("SPEC92", MachineSpec::spec92).render());
            println!("{}", params_table("SPEC95", MachineSpec::spec95).render());
        }
        "fig2" => {
            let (res, table, plots) = run_fig2::run(12)?;
            emit(
                opts,
                "fig2",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
            for p in plots {
                println!("{}", p.render());
            }
        }
        "fig3" | "table6" => {
            for (suite, label) in [(Suite::Spec92, "SPEC92"), (Suite::Spec95, "SPEC95")] {
                let res = run_fig3::run_suite(suite, scale, &Experiment::ALL)?;
                if target == "fig3" {
                    let t = run_fig3::render(&res, &format!("Figure 3 ({label} benchmarks)"));
                    emit(
                        opts,
                        &format!("fig3_{}", label.to_lowercase()),
                        &t,
                        serde_json::to_string_pretty(&res).ok(),
                    )?;
                }
                let t6 = run_fig3::render_table6(&res);
                emit(opts, &format!("table6_{}", label.to_lowercase()), &t6, None)?;
            }
        }
        "table7" => {
            let (res, table) = run_table7::run_with(scale, opts.sweep)?;
            emit(
                opts,
                "table7",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "table8" => {
            let (res, table) = run_table8::run_with(scale, opts.sweep)?;
            emit(
                opts,
                "table8",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "fig4" => {
            let (panels, tables) = run_fig4::run_with(scale, opts.sweep)?;
            for t in &tables {
                println!("{}", t.render());
            }
            for p in &panels {
                let mut plot = AsciiPlot::new(
                    format!(
                        "Figure 4 ({}): traffic (bytes) vs capacity, log-log",
                        p.name
                    ),
                    64,
                    16,
                )
                .log_log();
                let markers = ['1', '2', '3', '4', '5', '6', 'A', 'V'];
                for (c, m) in p.curves.iter().zip(markers) {
                    let pts: Vec<(f64, f64)> = c
                        .points
                        .iter()
                        .map(|&(s, t)| (s as f64, t as f64))
                        .collect();
                    plot = plot.series(m, c.label.clone(), pts);
                }
                println!("{}", plot.render());
            }
            if let Some(dir) = &opts.json_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| MembwError::io("create JSON directory", dir.clone(), e))?;
                let path = dir.join("fig4.json");
                let body = serde_json::to_string_pretty(&panels).expect("fig4 serializes");
                std::fs::write(&path, body)
                    .map_err(|e| MembwError::io("write JSON archive", path, e))?;
            }
        }
        "table9" => {
            let (res, tables) = run_table9::run_with(scale, opts.sweep)?;
            for t in &tables {
                println!("{}", t.render());
            }
            if let Some(dir) = &opts.json_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| MembwError::io("create JSON directory", dir.clone(), e))?;
                let path = dir.join("table9.json");
                let body = serde_json::to_string_pretty(&res).expect("table9 serializes");
                std::fs::write(&path, body)
                    .map_err(|e| MembwError::io("write JSON archive", path, e))?;
            }
        }
        "ablation" => {
            let (res, table) = run_ablation::run(scale, 16 * 1024)?;
            emit(
                opts,
                "ablation",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "dump" => {
            // Dump every benchmark's reference stream as .mwtr files.
            let dir = opts
                .json_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from("traces"));
            std::fs::create_dir_all(&dir)
                .map_err(|e| MembwError::io("create trace directory", dir.clone(), e))?;
            use membw_core::trace::io::save_workload;
            use membw_core::workloads::{suite92, suite95};
            for b in suite92(scale).iter().chain(suite95(scale).iter()) {
                let path = dir.join(format!("{}.mwtr", b.name()));
                let n = save_workload(&b.replayable(), &path).map_err(|e| MembwError::Trace {
                    path: path.clone(),
                    source: e,
                })?;
                println!("wrote {} ({n} refs)", path.display());
            }
        }
        "epin" => {
            let (res, table) = run_epin::run(scale)?;
            emit(
                opts,
                "epin",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "swprefetch" => {
            let (res, table) = run_swprefetch::run()?;
            emit(
                opts,
                "swprefetch",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "speculation" => {
            let (res, table) = run_speculation::run()?;
            emit(
                opts,
                "speculation",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "dram" => {
            let (res, table) = run_dram::run()?;
            emit(
                opts,
                "dram",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "interference" => {
            let (res, table) = run_interference::run(16 * 1024, 200)?;
            emit(
                opts,
                "interference",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        "extrapolate" => {
            let (res, table) = run_extrapolation::run()?;
            emit(
                opts,
                "extrapolate",
                &table,
                serde_json::to_string_pretty(&res).ok(),
            )?;
        }
        other => unreachable!("target '{other}' was validated up front"),
    }
    Ok(())
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // From here on SIGINT/SIGTERM request a drain instead of killing the
    // process; a second signal force-exits with code 130.
    runner::install_signal_drain();
    let cancel = runner::global_cancel_token();
    if let Some(d) = opts.deadline {
        cancel.set_deadline(d);
    }
    runner::set_checkpoint(Some(CheckpointConfig {
        root: opts.checkpoint_dir.clone(),
        resume: opts.resume,
    }));
    let leaves: Vec<&str> = opts
        .targets
        .iter()
        .flat_map(|t| {
            if t == "all" {
                ALL_TARGETS.to_vec()
            } else {
                vec![t.as_str()]
            }
        })
        .collect();
    let mut timings = Vec::new();
    let mut failed_targets: Vec<String> = Vec::new();
    let mut skipped_targets: Vec<String> = Vec::new();
    for t in leaves {
        // Once a drain is requested (signal or deadline) no further
        // target starts; already-finished targets keep their stdout.
        if cancel.is_cancelled() {
            skipped_targets.push(t.to_string());
            continue;
        }
        // A failed target never aborts the campaign: report it on
        // stderr (stdout stays byte-identical for healthy targets) and
        // keep going.
        if let Err(e) = run_target(&opts, t, &mut timings) {
            failed_targets.push(t.to_string());
            eprintln!("error: target '{t}': {e}");
            let jobs = e.failed_jobs();
            if !jobs.is_empty() {
                eprintln!("{}", report::failure_table(t, jobs).render());
            }
        }
    }
    if !timings.is_empty() {
        eprintln!();
        eprintln!(
            "{}",
            report::timing_table(&timings, runner::configured_jobs()).render()
        );
    }
    let audit_summary = audit::summary();
    if audit_summary.targets > 0 || audit::configured_level() != audit::AuditLevel::Off {
        let quarantined = runner::quarantined_artifacts();
        let trace_failures = membw_core::trace::TraceCache::global().stats().verify_failures;
        eprintln!(
            "audit[{}]: {} check(s) across {} target(s), {} violation(s); \
             {} artifact(s) quarantined, {} cached trace(s) failed verification",
            audit::configured_level().as_str(),
            audit_summary.checks,
            audit_summary.targets,
            audit_summary.violations,
            quarantined,
            trace_failures,
        );
    }
    let gov = runner::global_governor();
    if gov.limited() {
        let s = gov.stats();
        eprintln!(
            "governor[{} MiB]: finished at level {}; {} escalation event(s), \
             {} forced eviction(s), {} throttled admission(s)",
            s.budget_bytes.unwrap_or(0) / (1024 * 1024),
            s.level,
            s.events,
            s.forced_evictions,
            s.throttled_admissions,
        );
    }
    if let Some(reason) = cancel.cancel_reason() {
        // Partial-run summary: what finished, what the drain cut short,
        // and how to pick the campaign back up.
        let cancelled_jobs = runner::metrics().cancelled;
        eprintln!(
            "repro: cancelled ({reason}): {} target(s) completed, {} failed or cut short \
             ({} job(s) cancelled in flight), {} never started; completed jobs are \
             checkpointed under {} — rerun with --resume to finish",
            timings.len(),
            failed_targets.len(),
            cancelled_jobs,
            skipped_targets.len(),
            opts.checkpoint_dir.display()
        );
        std::process::exit(match reason {
            runner::CancelReason::Interrupted => 130,
            runner::CancelReason::DeadlineExceeded => 124,
        });
    }
    if !failed_targets.is_empty() {
        eprintln!(
            "repro: {} target(s) failed: {}; completed jobs are checkpointed under {} — rerun with --resume to reuse them",
            failed_targets.len(),
            failed_targets.join(", "),
            opts.checkpoint_dir.display()
        );
        std::process::exit(1);
    }
}
