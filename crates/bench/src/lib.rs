//! Benchmark harness for the membw reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p membw-bench --release --bin
//!   repro -- all`) regenerates every table and figure of the paper and
//!   prints them in the paper's layout (optionally archiving JSON);
//! * the **criterion benches** (`cargo bench -p membw-bench`) time the
//!   simulators themselves, one bench group per table/figure, so
//!   regressions in the instruments are caught.

use membw_core::workloads::Scale;

/// Parse a `--scale` argument value.
///
/// # Errors
///
/// Returns the offending string if it is not `test`, `small`, or
/// `full`.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!(
            "unknown scale '{other}' (expected test|small|full)"
        )),
    }
}

/// All targets `repro` understands, including the `all` meta-target.
pub const TARGETS: [&str; 20] = [
    "fig1",
    "table1",
    "fig2",
    "table2",
    "table3",
    "params",
    "fig3",
    "table6",
    "table7",
    "table8",
    "fig4",
    "table9",
    "epin",
    "extrapolate",
    "ablation",
    "interference",
    "dram",
    "speculation",
    "swprefetch",
    "dump",
];

/// The leaf targets the `all` meta-target expands to, in `repro`'s
/// output order (fig3 runs last: it is by far the slowest). This is the
/// single source of truth — the `repro` binary imports it rather than
/// maintaining its own copy, and a test pins it against [`TARGETS`].
pub const ALL_TARGETS: [&str; 18] = [
    "fig1",
    "table1",
    "fig2",
    "table2",
    "table3",
    "params",
    "table7",
    "table8",
    "fig4",
    "table9",
    "epin",
    "extrapolate",
    "ablation",
    "interference",
    "dram",
    "speculation",
    "swprefetch",
    "fig3",
];

/// Levenshtein edit distance (iterative two-row form) — small inputs
/// only, used for the "did you mean" hint.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Validate a CLI target name up front.
///
/// # Errors
///
/// For an unknown target, returns an error message that includes a
/// "did you mean" suggestion when some known target is within edit
/// distance 3.
pub fn validate_target(target: &str) -> Result<(), String> {
    if target == "all" || TARGETS.contains(&target) {
        return Ok(());
    }
    let best = TARGETS
        .iter()
        .map(|t| (edit_distance(target, t), *t))
        .min()
        .filter(|(d, _)| *d <= 3);
    match best {
        Some((_, suggestion)) => Err(format!(
            "unknown target '{target}' (did you mean '{suggestion}'?)"
        )),
        None => Err(format!(
            "unknown target '{target}' (run with --help for the list)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scales() {
        assert_eq!(parse_scale("test").unwrap(), Scale::Test);
        assert_eq!(parse_scale("small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("full").unwrap(), Scale::Full);
        assert!(parse_scale("huge").is_err());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("table8", "tabel8"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn unknown_targets_get_suggestions() {
        assert!(validate_target("table8").is_ok());
        assert!(validate_target("all").is_ok());
        let e = validate_target("tabel8").unwrap_err();
        assert!(e.contains("did you mean 'table8'"), "{e}");
        let e = validate_target("figg4").unwrap_err();
        assert!(e.contains("did you mean 'fig4'"), "{e}");
        // Nothing close: no misleading suggestion.
        let e = validate_target("zzzzzzzzzzzz").unwrap_err();
        assert!(!e.contains("did you mean"), "{e}");
    }

    #[test]
    fn target_list_covers_the_all_expansion() {
        // `all` must only expand to known leaf targets.
        for t in TARGETS {
            assert!(validate_target(t).is_ok(), "{t}");
        }
    }

    #[test]
    fn all_expansion_and_target_list_are_consistent() {
        // Every `all` leaf is a known target, no leaf repeats, and the
        // only targets outside the expansion are the non-default ones
        // (`table6` is folded into `fig3`; `dump` is a utility).
        for t in ALL_TARGETS {
            assert!(TARGETS.contains(&t), "'{t}' missing from TARGETS");
        }
        for (i, t) in ALL_TARGETS.iter().enumerate() {
            assert!(!ALL_TARGETS[..i].contains(t), "'{t}' duplicated");
        }
        let extras: Vec<&str> = TARGETS
            .iter()
            .copied()
            .filter(|t| !ALL_TARGETS.contains(t))
            .collect();
        assert_eq!(extras, ["table6", "dump"]);
    }
}
