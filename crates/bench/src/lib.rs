//! Benchmark harness for the membw reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p membw-bench --release --bin
//!   repro -- all`) regenerates every table and figure of the paper and
//!   prints them in the paper's layout (optionally archiving JSON);
//! * the **criterion benches** (`cargo bench -p membw-bench`) time the
//!   simulators themselves, one bench group per table/figure, so
//!   regressions in the instruments are caught.

use membw_core::workloads::Scale;

/// Parse a `--scale` argument value.
///
/// # Errors
///
/// Returns the offending string if it is not `test`, `small`, or
/// `full`.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!(
            "unknown scale '{other}' (expected test|small|full)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scales() {
        assert_eq!(parse_scale("test").unwrap(), Scale::Test);
        assert_eq!(parse_scale("small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("full").unwrap(), Scale::Full);
        assert!(parse_scale("huge").is_err());
    }
}
