//! Benchmark harness for the membw reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p membw-bench --release --bin
//!   repro -- all`) regenerates every table and figure of the paper and
//!   prints them in the paper's layout (optionally archiving JSON);
//! * the **criterion benches** (`cargo bench -p membw-bench`) time the
//!   simulators themselves, one bench group per table/figure, so
//!   regressions in the instruments are caught.
//!
//! The target registry (names, validation, the `all` expansion) and the
//! shared renderer moved to [`membw_core::targets`] so the `membw
//! serve` daemon can use them without depending on this crate; the
//! historical exports below are kept so embedders and the benches keep
//! compiling unchanged.

pub use membw_core::targets::{parse_scale, validate_target, ALL_TARGETS, TARGETS};
