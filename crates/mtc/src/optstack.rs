//! One-pass OPT stack simulation (Mattson's generalized stack algorithm
//! with the **min** priority; made practical by Sugumar & Abraham \[44\],
//! whom the paper cites for efficient **min** simulation).
//!
//! Belady's **min** is a stack algorithm: the contents of an optimal
//! cache of capacity `C` are a subset of the optimal cache of capacity
//! `C+1`, provided replacement priority is the *next-use time*. That
//! inclusion property means one pass over the trace, maintaining a
//! priority-repaired stack, yields the **min** miss count for *every*
//! capacity simultaneously — the way Figure 4's MTC curves would be
//! produced at scale. (This module computes miss counts; for byte-exact
//! traffic including write policy and bypass, use
//! [`MinCache`](crate::MinCache) or the multi-capacity
//! [`min_sweep`](crate::min_sweep).)

use crate::nextuse::{NextUseIndex, NEVER};
use membw_trace::MemRef;
use std::collections::HashMap;

/// Depth profile of a trace under OPT replacement.
///
/// # Example
///
/// ```
/// use membw_mtc::optstack::OptProfile;
/// use membw_trace::MemRef;
///
/// // Cyclic sweep of 4 words: OPT with 2 blocks keeps one resident.
/// let refs: Vec<MemRef> = (0..12).map(|i| MemRef::read((i % 4) * 4, 4)).collect();
/// let p = OptProfile::measure(&refs, 4);
/// assert_eq!(p.misses(4), 4, "full-size cache: cold misses only");
/// assert!(p.misses(2) < 12, "OPT does not thrash like LRU");
/// ```
#[derive(Debug, Clone)]
pub struct OptProfile {
    /// `histogram[d]` = accesses whose OPT stack depth was exactly `d`
    /// (1-based: depth 1 = top of stack).
    histogram: HashMap<usize, u64>,
    cold: u64,
    total: u64,
}

impl OptProfile {
    /// Run the one-pass OPT stack over `refs` at `block_size`
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn measure(refs: &[MemRef], block_size: u64) -> Self {
        let index = NextUseIndex::build(refs, block_size);
        let mut stack: Vec<u64> = Vec::new();
        // block -> next use time (as of the most recent processing).
        let mut next_use: HashMap<u64, u64> = HashMap::new();
        let mut pos: HashMap<u64, usize> = HashMap::new();
        let mut histogram: HashMap<usize, u64> = HashMap::new();
        let mut cold = 0u64;

        for i in 0..index.len() {
            let b = index.block(i);
            let nu = index.next_use(i);
            let depth = pos.get(&b).copied();
            match depth {
                None => cold += 1,
                Some(d) => {
                    *histogram.entry(d + 1).or_insert(0) += 1;
                }
            }
            // Move x to the top (a just-accessed block is resident in
            // every OPT cache), then repair the displaced levels: the
            // block with the *later* next use — the would-be victim —
            // keeps sinking until it lands in x's old slot (or, for a
            // cold block, a newly grown bottom slot).
            next_use.insert(b, nu);
            let d = match depth {
                Some(d) => d,
                None => {
                    stack.push(b); // placeholder; overwritten by the walk
                    stack.len() - 1
                }
            };
            let mut carry = stack[0];
            stack[0] = b;
            pos.insert(b, 0);
            if d > 0 {
                for level in 1..=d {
                    if level == d {
                        stack[d] = carry;
                        pos.insert(carry, d);
                        break;
                    }
                    let incumbent = stack[level];
                    let c_nu = next_use.get(&carry).copied().unwrap_or(NEVER);
                    let inc_nu = next_use.get(&incumbent).copied().unwrap_or(NEVER);
                    // Earlier next use = higher priority = stays higher.
                    if c_nu < inc_nu {
                        stack[level] = carry;
                        pos.insert(carry, level);
                        carry = incumbent;
                    }
                    // Otherwise the incumbent stays; carry keeps walking.
                }
            }
        }

        Self {
            histogram,
            cold,
            total: refs.len() as u64,
        }
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Compulsory (first-touch) misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// **min** misses for a cache of `capacity_blocks`: accesses found
    /// deeper than the capacity, plus cold misses.
    pub fn misses(&self, capacity_blocks: usize) -> u64 {
        let deep: u64 = self
            .histogram
            .iter()
            .filter(|(d, _)| **d > capacity_blocks)
            .map(|(_, c)| *c)
            .sum();
        self.cold + deep
    }

    /// Miss ratio at `capacity_blocks` (1.0 for an empty trace).
    pub fn miss_ratio(&self, capacity_blocks: usize) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.misses(capacity_blocks) as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min::{MinCache, MinConfig, MinWritePolicy};

    fn reads(words: &[u64]) -> Vec<MemRef> {
        words.iter().map(|&w| MemRef::read(w * 4, 4)).collect()
    }

    fn pseudo_random_trace(n: usize, words: u64, seed: u64) -> Vec<MemRef> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let w = (x >> 33) % words;
                if i % 5 == 0 {
                    MemRef::write(w * 4, 4)
                } else {
                    MemRef::read(w * 4, 4)
                }
            })
            .collect()
    }

    /// The load-bearing test: one-pass stack counts must equal the
    /// two-pass MinCache at every capacity.
    #[test]
    fn matches_two_pass_min_at_every_capacity() {
        for seed in [1u64, 7, 42] {
            let refs = pseudo_random_trace(1500, 48, seed);
            let profile = OptProfile::measure(&refs, 4);
            for cap_blocks in [1usize, 2, 4, 8, 16, 32, 64] {
                let cfg =
                    MinConfig::new((cap_blocks * 4) as u64, 4, MinWritePolicy::Allocate, false);
                let two_pass = MinCache::simulate(&cfg, &refs).demand_misses();
                assert_eq!(
                    profile.misses(cap_blocks),
                    two_pass,
                    "seed {seed}, capacity {cap_blocks} blocks"
                );
            }
        }
    }

    #[test]
    fn opt_beats_lru_on_cyclic_sweep() {
        let seq: Vec<u64> = (0..60).map(|i| i % 6).collect();
        let p = OptProfile::measure(&reads(&seq), 4);
        // LRU at capacity 3 would miss all 60; OPT keeps 2 of the loop.
        assert!(p.misses(3) < 45, "got {}", p.misses(3));
        assert_eq!(p.misses(6), 6, "full capacity: cold only");
    }

    #[test]
    fn misses_monotone_in_capacity() {
        let refs = pseudo_random_trace(2000, 64, 5);
        let p = OptProfile::measure(&refs, 4);
        let mut last = u64::MAX;
        for c in 1..40 {
            let m = p.misses(c);
            assert!(m <= last, "inclusion property violated at {c}");
            last = m;
        }
        assert_eq!(p.misses(10_000), p.cold_misses());
    }

    #[test]
    fn empty_trace() {
        let p = OptProfile::measure(&[], 4);
        assert_eq!(p.total(), 0);
        assert_eq!(p.miss_ratio(4), 1.0);
    }

    #[test]
    fn block_granularity_respected() {
        let refs = vec![MemRef::read(0, 4), MemRef::read(4, 4)];
        let p32 = OptProfile::measure(&refs, 32);
        assert_eq!(p32.cold_misses(), 1, "same 32B block");
        let p4 = OptProfile::measure(&refs, 4);
        assert_eq!(p4.cold_misses(), 2);
    }
}
