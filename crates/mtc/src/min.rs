//! Two-pass Belady **min** cache simulation with bypass and
//! write-validate.
//!
//! # Hot-loop structure
//!
//! Victim selection is a *max* query over `(next_use, block)` pairs, hit
//! upkeep is a re-key, and eviction is a delete-max. The original
//! implementation (preserved as [`crate::reference::ReferenceMinCache`])
//! kept every resident pair in a `BTreeSet`, paying two tree edits per
//! hit and a tree walk per miss. [`MinCache`] instead uses a
//! **lazy-deletion binary max-heap**: hits only *push* the re-keyed pair
//! and leave the stale one in place; the victim query pops entries whose
//! priority disagrees with the residency map until the top is current.
//! Since a block's successive next-use keys strictly increase (each is a
//! later trace position, then [`crate::nextuse::NEVER`]), a stale pair
//! can never collide with a live one, and the lexicographic
//! `(next_use, block)` heap order reproduces the `BTreeSet` maximum
//! exactly — including the tie-break on block number — so both
//! implementations produce identical counters on any trace (enforced by
//! the `min_equivalence` property test). The residency map itself is
//! keyed with [`membw_trace::FastHashMap`] rather than SipHash.

use crate::nextuse::NextUseIndex;
use membw_cache::CacheStats;
use membw_trace::{FastHashMap, MemRef};
use std::collections::BinaryHeap;

/// Write-allocation policy of a **min** cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinWritePolicy {
    /// Write misses fetch the block before writing (write-allocate).
    Allocate,
    /// Write misses allocate by overwriting, with no fetch
    /// (write-validate [Jouppi 25]). Requires one-word blocks.
    Validate,
}

/// Configuration of a **min**-replacement, fully-associative cache.
///
/// The paper's MTC (§5.2) is [`MinConfig::mtc`]: one-word blocks, bypass,
/// write-validate, write-back. The Table 10 factor experiments also use
/// **min** caches with 32-byte blocks and write-allocate — build those
/// with [`MinConfig::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinConfig {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Transfer/address block size in bytes.
    pub block_size: u64,
    /// Write-miss policy.
    pub write: MinWritePolicy,
    /// Whether low-priority misses may bypass allocation.
    pub bypass: bool,
}

impl MinConfig {
    /// A general **min** cache.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two, the block does not divide
    /// the capacity, or write-validate is requested with multi-word
    /// blocks.
    pub fn new(capacity_bytes: u64, block_size: u64, write: MinWritePolicy, bypass: bool) -> Self {
        assert!(
            capacity_bytes.is_power_of_two() && block_size.is_power_of_two(),
            "sizes must be powers of two"
        );
        assert!(block_size >= 4, "blocks are at least one word");
        assert!(
            capacity_bytes >= block_size,
            "capacity must hold at least one block"
        );
        assert!(
            write == MinWritePolicy::Allocate || block_size == 4,
            "write-validate min caches use one-word blocks (as in the paper)"
        );
        Self {
            capacity_bytes,
            block_size,
            write,
            bypass,
        }
    }

    /// The paper's minimal-traffic cache of `capacity_bytes`: fully
    /// associative, 4-byte blocks, **min** replacement, bypass,
    /// write-validate, write-back.
    pub fn mtc(capacity_bytes: u64) -> Self {
        Self::new(capacity_bytes, 4, MinWritePolicy::Validate, true)
    }

    /// Number of blocks the cache holds.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_bytes / self.block_size
    }
}

/// A fully-associative cache managed by Belady's **min** policy.
///
/// Use [`MinCache::simulate`] for the common whole-trace case; the
/// incremental API ([`MinCache::new`] + [`MinCache::access`] +
/// [`MinCache::flush`]) exists for callers that interleave their own
/// bookkeeping.
#[derive(Debug)]
pub struct MinCache {
    cfg: MinConfig,
    /// block -> (next_use, dirty). A heap entry is *live* iff its
    /// next-use key matches this map's current value for the block.
    resident: FastHashMap<u64, (u64, bool)>,
    /// Max-heap of (next_use, block) with lazy deletion: hits and
    /// evictions leave stale entries behind, discarded when they
    /// surface at the top.
    heap: BinaryHeap<(u64, u64)>,
    stats: CacheStats,
}

impl MinCache {
    /// An empty **min** cache.
    pub fn new(cfg: MinConfig) -> Self {
        Self {
            cfg,
            resident: FastHashMap::default(),
            heap: BinaryHeap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Configuration of this cache.
    pub fn config(&self) -> &MinConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Simulate an entire reference stream (two passes: next-use build,
    /// then **min** replay) including the end-of-run flush, and return the
    /// final counters.
    pub fn simulate(cfg: &MinConfig, refs: &[MemRef]) -> CacheStats {
        let index = NextUseIndex::build(refs, cfg.block_size);
        Self::simulate_with_index(cfg, refs, &index)
    }

    /// Simulate an entire reference stream against a *prebuilt* next-use
    /// index, including the end-of-run flush. Callers sweeping several
    /// capacities at one block size share the index build — the dominant
    /// cost of a **min** pass at MTC (one-word) granularity — instead of
    /// paying it once per capacity (see
    /// [`min_sweep`](crate::optstack::min_sweep)).
    ///
    /// # Panics
    ///
    /// Panics if the index was built at a different block size or over a
    /// different number of references.
    pub fn simulate_with_index(
        cfg: &MinConfig,
        refs: &[MemRef],
        index: &NextUseIndex,
    ) -> CacheStats {
        assert_eq!(
            index.block_size(),
            cfg.block_size,
            "next-use index block size must match the cache configuration"
        );
        assert_eq!(
            index.len(),
            refs.len(),
            "next-use index must cover the reference stream"
        );
        let mut cache = Self::new(*cfg);
        // Poll the ambient cancel token on the scan so a drain or
        // deadline stops a long MTC pass within milliseconds.
        let cancel = membw_runner::ambient_cancel_token();
        for (i, r) in refs.iter().enumerate() {
            if i.is_multiple_of(8192) {
                cancel.check();
            }
            cache.access(*r, index.block(i), index.next_use(i));
        }
        cache.flush()
    }

    /// Furthest-future resident entry, if any. Pops stale heap tops
    /// (lazy deletion) until the maximum is live, then peeks it.
    fn furthest(&mut self) -> Option<(u64, u64)> {
        while let Some(&(next, block)) = self.heap.peek() {
            match self.resident.get(&block) {
                Some(&(cur, _)) if cur == next => return Some((next, block)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Evict the current min-victim.
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty.
    fn evict_victim(&mut self) {
        let (_, block) = self.furthest().expect("full cache has entries");
        self.heap.pop();
        let (_, dirty) = self
            .resident
            .remove(&block)
            .expect("evicted block is resident");
        if dirty {
            self.stats.bytes_written_back += self.cfg.block_size;
        }
    }

    fn insert(&mut self, block: u64, next: u64, dirty: bool) {
        self.resident.insert(block, (next, dirty));
        self.heap.push((next, block));
    }

    /// Present one access. `block` and `next_use` come from a
    /// [`NextUseIndex`] built at this cache's block size.
    ///
    /// Returns `true` on a hit.
    pub fn access(&mut self, r: MemRef, block: u64, next_use: u64) -> bool {
        self.stats.accesses += 1;
        self.stats.request_bytes += u64::from(r.size);
        let is_read = r.kind.is_read();
        if is_read {
            self.stats.reads += 1;
        } else {
            self.stats.writes += 1;
        }

        if let Some(&(_, dirty)) = self.resident.get(&block) {
            // Hit: re-key the priority to this access's next use. The
            // old heap entry goes stale in place (a block's next-use
            // keys strictly increase, so it can never shadow the new
            // one) and is discarded when it reaches the top.
            let dirty = dirty || !is_read;
            self.insert(block, next_use, dirty);
            if is_read {
                self.stats.read_hits += 1;
            } else {
                self.stats.write_hits += 1;
            }
            return true;
        }

        // Miss.
        if is_read {
            self.stats.read_misses += 1;
        } else {
            self.stats.write_misses += 1;
        }

        // Decide whether to allocate: bypass when the incoming block's
        // next use is further than every resident block's (it would be
        // its own min-victim).
        let full = self.resident.len() as u64 >= self.cfg.capacity_blocks();
        let allocate = if !full {
            true
        } else if self.cfg.bypass {
            match self.furthest() {
                Some((worst_next, _)) => next_use < worst_next,
                None => true,
            }
        } else {
            true
        };

        match (is_read, self.cfg.write) {
            (true, _) => {
                // The datum crosses the pins whether or not it is kept.
                self.stats.bytes_fetched += self.cfg.block_size;
                if allocate {
                    if full {
                        self.evict_victim();
                    }
                    self.insert(block, next_use, false);
                }
            }
            (false, MinWritePolicy::Allocate) => {
                if allocate {
                    // Fetch-on-write, then dirty.
                    self.stats.bytes_fetched += self.cfg.block_size;
                    if full {
                        self.evict_victim();
                    }
                    self.insert(block, next_use, true);
                } else {
                    // Bypassed write goes straight to memory.
                    self.stats.bytes_written_through += u64::from(r.size);
                }
            }
            (false, MinWritePolicy::Validate) => {
                if allocate {
                    // Allocate by overwriting: no fetch at all.
                    if full {
                        self.evict_victim();
                    }
                    self.insert(block, next_use, true);
                } else {
                    self.stats.bytes_written_through += u64::from(r.size);
                }
            }
        }
        false
    }

    /// Write back all dirty blocks (counted as flush traffic) and return
    /// the final counters.
    pub fn flush(&mut self) -> CacheStats {
        let dirty_blocks = self.resident.values().filter(|(_, d)| *d).count() as u64;
        self.stats.bytes_flushed += dirty_blocks * self.cfg.block_size;
        self.resident.clear();
        self.heap.clear();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_cache::{Associativity, Cache, CacheConfig};
    use membw_trace::{VecWorkload, Workload};

    fn reads(words: &[u64]) -> Vec<MemRef> {
        words.iter().map(|&w| MemRef::read(w * 4, 4)).collect()
    }

    fn lru_fa_misses(refs: &[MemRef], capacity_bytes: u64, block: u64) -> u64 {
        let cfg = CacheConfig::builder(capacity_bytes, block)
            .associativity(Associativity::Full)
            .build()
            .unwrap();
        let mut c = Cache::new(cfg);
        for &r in refs {
            c.access(r);
        }
        c.flush().demand_misses()
    }

    #[test]
    fn belady_beats_lru_on_cyclic_sweep() {
        // Cyclic sweep of 8 words with a 4-word cache: LRU thrashes
        // (100 % miss), min keeps a stable half.
        let seq: Vec<u64> = (0..80).map(|i| i % 8).collect();
        let refs = reads(&seq);
        let cfg = MinConfig::new(16, 4, MinWritePolicy::Allocate, false);
        let min_stats = MinCache::simulate(&cfg, &refs);
        let lru = lru_fa_misses(&refs, 16, 4);
        assert_eq!(lru, 80, "LRU thrashes the cyclic sweep");
        assert!(min_stats.demand_misses() < 60, "min keeps part of the loop");
        assert!(min_stats.demand_misses() >= 8, "cold misses remain");
    }

    #[test]
    fn belady_never_worse_than_lru() {
        // Deterministic pseudo-random word stream.
        let mut x = 12345u64;
        let seq: Vec<u64> = (0..2000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 64
            })
            .collect();
        let refs = reads(&seq);
        for cap in [16u64, 64, 128] {
            let cfg = MinConfig::new(cap, 4, MinWritePolicy::Allocate, false);
            let min_misses = MinCache::simulate(&cfg, &refs).demand_misses();
            assert!(
                min_misses <= lru_fa_misses(&refs, cap, 4),
                "min must not miss more than LRU at capacity {cap}"
            );
        }
    }

    #[test]
    fn bypass_never_allocates_single_use_data_over_loop() {
        // A hot 2-word loop with a cold streaming word interleaved: with
        // bypass, the stream never displaces the loop.
        let mut words = Vec::new();
        for i in 0..50u64 {
            words.push(0);
            words.push(1);
            words.push(100 + i); // used once, never again
        }
        let refs = reads(&words);
        let with_bypass =
            MinCache::simulate(&MinConfig::new(8, 4, MinWritePolicy::Allocate, true), &refs);
        // Hot words miss twice (cold), stream misses 50 times; no extra.
        assert_eq!(with_bypass.demand_misses(), 52);
        assert_eq!(with_bypass.bytes_fetched, 52 * 4);
    }

    #[test]
    fn write_validate_eliminates_write_fetch_traffic() {
        // Write-once stream: write-validate fetches nothing; the dirty
        // words flush at the end.
        let refs: Vec<MemRef> = (0..64u64).map(|w| MemRef::write(w * 4, 4)).collect();
        let wv = MinCache::simulate(
            &MinConfig::new(64, 4, MinWritePolicy::Validate, true),
            &refs,
        );
        assert_eq!(wv.bytes_fetched, 0);
        // 48 words bypass-or-evict... with bypass, once full (16 blocks),
        // later writes with no future use bypass straight to memory.
        assert_eq!(wv.traffic_below(), 64 * 4, "each written word crosses once");
        let wa = MinCache::simulate(
            &MinConfig::new(64, 4, MinWritePolicy::Allocate, false),
            &refs,
        );
        assert!(
            wa.traffic_below() > wv.traffic_below(),
            "write-allocate pays fetch-on-write"
        );
    }

    #[test]
    fn mtc_traffic_at_most_lru_cache_traffic() {
        // The headline invariant behind G >= 1 (Eq. 6), on a mixed trace.
        let mut refs = Vec::new();
        let mut x = 99u64;
        for i in 0..3000u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let w = (x >> 40) % 512;
            if i % 4 == 0 {
                refs.push(MemRef::write(w * 4, 4));
            } else {
                refs.push(MemRef::read(w * 4, 4));
            }
        }
        let w = VecWorkload::new("t", refs);
        let refs = w.collect_mem_refs();
        for cap in [256u64, 1024] {
            let mtc = MinCache::simulate(&MinConfig::mtc(cap), &refs);
            let cache_cfg = CacheConfig::builder(cap, 32).build().unwrap();
            let mut c = Cache::new(cache_cfg);
            for &r in &refs {
                c.access(r);
            }
            let cs = c.flush();
            assert!(
                mtc.traffic_below() <= cs.traffic_below(),
                "MTC must not out-traffic a real cache (cap {cap})"
            );
        }
    }

    #[test]
    fn hit_rekeys_priority() {
        // Ensure re-referenced blocks move their queue position: word 0 is
        // referenced early and again at the very end; a 1-block cache with
        // an intervening distinct word must still behave sanely.
        let refs = reads(&[0, 1, 0]);
        let stats =
            MinCache::simulate(&MinConfig::new(4, 4, MinWritePolicy::Allocate, true), &refs);
        // Word 1 (never reused) bypasses; word 0 hits on its return.
        assert_eq!(stats.read_hits, 1);
        assert_eq!(stats.read_misses, 2);
    }

    #[test]
    fn flush_writes_back_only_dirty() {
        let refs = vec![MemRef::read(0, 4), MemRef::write(4, 4)];
        let stats = MinCache::simulate(&MinConfig::mtc(64), &refs);
        assert_eq!(stats.bytes_flushed, 4);
    }

    #[test]
    #[should_panic(expected = "one-word blocks")]
    fn validate_requires_word_blocks() {
        let _ = MinConfig::new(1024, 32, MinWritePolicy::Validate, true);
    }
}
