//! Factor isolation for the traffic-inefficiency gap (Tables 9–10).
//!
//! Each factor toggles exactly one cache property between two experiment
//! configurations; the reported gap is the *difference in traffic
//! inefficiency* `G(exp1) − G(exp2)` against the common reference MTC
//! (the write-validate MTC used throughout §5, per the Figure 4 caption).

use crate::min::{MinCache, MinConfig, MinWritePolicy};
use crate::nextuse::NextUseIndex;
use membw_cache::{Associativity, Cache, CacheConfig};
use membw_trace::{MemRef, Workload};
use serde::{Deserialize, Serialize};

/// One side of a factor experiment (a row of Table 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorExperiment {
    /// An LRU cache: `(associativity, block_size)`, write-allocate,
    /// write-back.
    Lru(Associativity, u64),
    /// A fully-associative **min** cache: `(block_size, write policy)`,
    /// write-back, no bypass (bypass is folded into **min**'s victim
    /// choice for the factor studies).
    Min(u64, MinWritePolicy),
}

impl FactorExperiment {
    /// Simulate this experiment at `capacity_bytes` over `refs` and
    /// return total traffic below in bytes.
    pub fn traffic(&self, capacity_bytes: u64, refs: &[MemRef]) -> u64 {
        match *self {
            FactorExperiment::Lru(assoc, block) => {
                let cfg = CacheConfig::builder(capacity_bytes, block)
                    .associativity(assoc)
                    .build()
                    .expect("factor experiment geometry is valid");
                let mut c = Cache::new(cfg);
                for &r in refs {
                    c.access(r);
                }
                c.flush().traffic_below()
            }
            FactorExperiment::Min(block, write) => {
                let cfg = MinConfig::new(capacity_bytes, block, write, true);
                MinCache::simulate(&cfg, refs).traffic_below()
            }
        }
    }

    /// Compact label, e.g. `LRU,1a,32B,WA`.
    pub fn label(&self) -> String {
        match *self {
            FactorExperiment::Lru(assoc, block) => {
                let a = match assoc {
                    Associativity::Ways(n) => format!("{n}a"),
                    Associativity::Full => "fa".to_string(),
                };
                format!("LRU,{a},{block}B,WA")
            }
            FactorExperiment::Min(block, write) => {
                let w = match write {
                    MinWritePolicy::Allocate => "WA",
                    MinWritePolicy::Validate => "WV",
                };
                format!("MIN,fa,{block}B,{w}")
            }
        }
    }
}

/// A named factor: the pair of experiments that isolate it (Table 10).
#[derive(Debug, Clone, Copy)]
pub struct FactorSpec {
    /// Factor name as in Table 9 (e.g. `"Associativity"`).
    pub name: &'static str,
    /// Baseline experiment.
    pub exp1: FactorExperiment,
    /// Improved experiment.
    pub exp2: FactorExperiment,
}

/// The five factor rows of Table 10.
pub const TABLE10_FACTORS: [FactorSpec; 5] = [
    FactorSpec {
        name: "Associativity",
        exp1: FactorExperiment::Lru(Associativity::Ways(1), 32),
        exp2: FactorExperiment::Lru(Associativity::Full, 32),
    },
    FactorSpec {
        name: "Replacement",
        exp1: FactorExperiment::Lru(Associativity::Full, 32),
        exp2: FactorExperiment::Min(32, MinWritePolicy::Allocate),
    },
    FactorSpec {
        name: "Blocksize (cache)",
        exp1: FactorExperiment::Lru(Associativity::Ways(1), 32),
        exp2: FactorExperiment::Lru(Associativity::Ways(1), 4),
    },
    FactorSpec {
        name: "Blocksize (MTC)",
        exp1: FactorExperiment::Min(32, MinWritePolicy::Allocate),
        exp2: FactorExperiment::Min(4, MinWritePolicy::Allocate),
    },
    FactorSpec {
        name: "Write validate",
        exp1: FactorExperiment::Min(4, MinWritePolicy::Allocate),
        exp2: FactorExperiment::Min(4, MinWritePolicy::Validate),
    },
];

/// Result of isolating one factor for one workload (a cell of Table 9).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactorGap {
    /// Factor name.
    pub factor: String,
    /// Workload name.
    pub workload: String,
    /// Capacity used.
    pub capacity_bytes: u64,
    /// Inefficiency of experiment 1 against the reference MTC.
    pub g_exp1: f64,
    /// Inefficiency of experiment 2 against the reference MTC.
    pub g_exp2: f64,
}

impl FactorGap {
    /// The Table 9 value: `G(exp1) − G(exp2)`. Negative values mean the
    /// "improvement" increased traffic (as the paper observes for
    /// Dnasa7's associativity factor).
    pub fn delta(&self) -> f64 {
        self.g_exp1 - self.g_exp2
    }
}

/// Measure one factor's inefficiency gap for `workload` at
/// `capacity_bytes`.
///
/// Returns `None` if the reference MTC generated no traffic (degenerate
/// trace).
pub fn factor_gap<W: Workload + ?Sized>(
    spec: &FactorSpec,
    workload: &W,
    capacity_bytes: u64,
) -> Option<FactorGap> {
    let refs = workload.collect_mem_refs();
    let mtc = MinCache::simulate(&MinConfig::mtc(capacity_bytes), &refs);
    let d_mtc = mtc.traffic_below();
    if d_mtc == 0 {
        return None;
    }
    let t1 = spec.exp1.traffic(capacity_bytes, &refs);
    let t2 = spec.exp2.traffic(capacity_bytes, &refs);
    Some(FactorGap {
        factor: spec.name.to_string(),
        workload: workload.name().to_string(),
        capacity_bytes,
        g_exp1: t1 as f64 / d_mtc as f64,
        g_exp2: t2 as f64 / d_mtc as f64,
    })
}

/// Measure *every* Table 10 factor for `workload` at `capacity_bytes`
/// in one shot, returning one entry per [`TABLE10_FACTORS`] row in
/// order.
///
/// Produces exactly the values of calling [`factor_gap`] per row, but
/// collects the reference stream once, builds one next-use index per
/// distinct **min** block size (shared by the reference MTC and every
/// **min** experiment at that granularity), and simulates each of the
/// six unique experiments once even though the five rows reference
/// them nine times. Entries are `None` only when the reference MTC
/// generated no traffic (degenerate trace), which holds for all rows
/// at once.
pub fn factor_gaps<W: Workload + ?Sized>(
    workload: &W,
    capacity_bytes: u64,
) -> Vec<Option<FactorGap>> {
    let refs = workload.collect_mem_refs();

    // block size -> next-use index, built lazily on first use. The
    // index is the dominant allocation (16 bytes per reference); report
    // it to the ambient governor like any other sweep buffer.
    let mut indices: Vec<(u64, NextUseIndex)> = Vec::new();
    fn index_at<'a>(
        indices: &'a mut Vec<(u64, NextUseIndex)>,
        refs: &[MemRef],
        block: u64,
    ) -> &'a NextUseIndex {
        if let Some(i) = indices.iter().position(|(b, _)| *b == block) {
            return &indices[i].1;
        }
        membw_runner::ambient_governor().observe_arena_bytes(refs.len() as u64 * 16);
        indices.push((block, NextUseIndex::build(refs, block)));
        &indices.last().expect("just pushed").1
    }

    let mtc_cfg = MinConfig::mtc(capacity_bytes);
    let d_mtc = {
        let idx = index_at(&mut indices, &refs, mtc_cfg.block_size);
        MinCache::simulate_with_index(&mtc_cfg, &refs, idx).traffic_below()
    };
    if d_mtc == 0 {
        return TABLE10_FACTORS.iter().map(|_| None).collect();
    }

    let mut computed: Vec<(FactorExperiment, u64)> = Vec::new();
    TABLE10_FACTORS
        .iter()
        .map(|spec| {
            let mut traffic_of = |exp: FactorExperiment| -> u64 {
                if let Some(&(_, t)) = computed.iter().find(|(e, _)| *e == exp) {
                    return t;
                }
                let t = match exp {
                    FactorExperiment::Lru(..) => exp.traffic(capacity_bytes, &refs),
                    FactorExperiment::Min(block, write) => {
                        // Same configuration `FactorExperiment::traffic`
                        // builds, against the shared index.
                        let cfg = MinConfig::new(capacity_bytes, block, write, true);
                        let idx = index_at(&mut indices, &refs, block);
                        MinCache::simulate_with_index(&cfg, &refs, idx).traffic_below()
                    }
                };
                computed.push((exp, t));
                t
            };
            let t1 = traffic_of(spec.exp1);
            let t2 = traffic_of(spec.exp2);
            Some(FactorGap {
                factor: spec.name.to_string(),
                workload: workload.name().to_string(),
                capacity_bytes,
                g_exp1: t1 as f64 / d_mtc as f64,
                g_exp2: t2 as f64 / d_mtc as f64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::pattern::{UniformRandom, Zipf};

    #[test]
    fn labels_match_table_10() {
        assert_eq!(TABLE10_FACTORS[0].exp1.label(), "LRU,1a,32B,WA");
        assert_eq!(TABLE10_FACTORS[0].exp2.label(), "LRU,fa,32B,WA");
        assert_eq!(TABLE10_FACTORS[1].exp2.label(), "MIN,fa,32B,WA");
        assert_eq!(TABLE10_FACTORS[4].exp2.label(), "MIN,fa,4B,WV");
    }

    #[test]
    fn block_size_factor_dominates_for_no_spatial_locality() {
        // Uniform random single-word touches over a large extent: 32-byte
        // blocks waste 8x traffic, so the cache block-size factor is large
        // and positive.
        let w = UniformRandom::new(0, 1 << 20, 30_000, 21);
        let spec = &TABLE10_FACTORS[2];
        let gap = factor_gap(spec, &w, 16 * 1024).expect("traffic exists");
        assert!(gap.delta() > 1.0, "delta = {}", gap.delta());
    }

    #[test]
    fn write_validate_factor_positive_for_write_heavy_code() {
        let w = UniformRandom::new(0, 1 << 20, 30_000, 22).with_write_fraction(0.5);
        let gap = factor_gap(&TABLE10_FACTORS[4], &w, 16 * 1024).expect("traffic exists");
        assert!(gap.delta() > 0.0, "WV must cut write-fetch traffic");
    }

    #[test]
    fn replacement_factor_non_negative_on_reuse_heavy_code() {
        let w = Zipf::new(0, 4096, 16, 50_000, 0.9, 23);
        let gap = factor_gap(&TABLE10_FACTORS[1], &w, 4096).expect("traffic exists");
        // min replacement cannot generate more misses than LRU; traffic
        // differences from write-backs are second-order here.
        assert!(gap.delta() > -0.5, "delta = {}", gap.delta());
    }

    #[test]
    fn factor_gap_none_for_empty_trace() {
        use membw_trace::VecWorkload;
        let w = VecWorkload::new("empty", vec![]);
        assert!(factor_gap(&TABLE10_FACTORS[0], &w, 1024).is_none());
        assert!(factor_gaps(&w, 1024).iter().all(Option::is_none));
    }

    #[test]
    fn factor_gaps_match_per_factor_measurement() {
        // The one-shot sweep must reproduce every per-factor value
        // bit for bit (same integer traffic, same f64 division).
        let w = Zipf::new(0, 2048, 16, 20_000, 0.8, 31).with_write_fraction(0.3);
        let all = factor_gaps(&w, 8 * 1024);
        assert_eq!(all.len(), TABLE10_FACTORS.len());
        for (spec, got) in TABLE10_FACTORS.iter().zip(&all) {
            let want = factor_gap(spec, &w, 8 * 1024).expect("traffic exists");
            let got = got.as_ref().expect("traffic exists");
            assert_eq!(got.factor, want.factor);
            assert_eq!(got.workload, want.workload);
            assert_eq!(got.capacity_bytes, want.capacity_bytes);
            assert_eq!(got.g_exp1.to_bits(), want.g_exp1.to_bits(), "{}", spec.name);
            assert_eq!(got.g_exp2.to_bits(), want.g_exp2.to_bits(), "{}", spec.name);
        }
    }
}
