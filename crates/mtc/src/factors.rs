//! Factor isolation for the traffic-inefficiency gap (Tables 9–10).
//!
//! Each factor toggles exactly one cache property between two experiment
//! configurations; the reported gap is the *difference in traffic
//! inefficiency* `G(exp1) − G(exp2)` against the common reference MTC
//! (the write-validate MTC used throughout §5, per the Figure 4 caption).

use crate::min::{MinCache, MinConfig, MinWritePolicy};
use membw_cache::{Associativity, Cache, CacheConfig};
use membw_trace::{MemRef, Workload};
use serde::{Deserialize, Serialize};

/// One side of a factor experiment (a row of Table 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorExperiment {
    /// An LRU cache: `(associativity, block_size)`, write-allocate,
    /// write-back.
    Lru(Associativity, u64),
    /// A fully-associative **min** cache: `(block_size, write policy)`,
    /// write-back, no bypass (bypass is folded into **min**'s victim
    /// choice for the factor studies).
    Min(u64, MinWritePolicy),
}

impl FactorExperiment {
    /// Simulate this experiment at `capacity_bytes` over `refs` and
    /// return total traffic below in bytes.
    pub fn traffic(&self, capacity_bytes: u64, refs: &[MemRef]) -> u64 {
        match *self {
            FactorExperiment::Lru(assoc, block) => {
                let cfg = CacheConfig::builder(capacity_bytes, block)
                    .associativity(assoc)
                    .build()
                    .expect("factor experiment geometry is valid");
                let mut c = Cache::new(cfg);
                for &r in refs {
                    c.access(r);
                }
                c.flush().traffic_below()
            }
            FactorExperiment::Min(block, write) => {
                let cfg = MinConfig::new(capacity_bytes, block, write, true);
                MinCache::simulate(&cfg, refs).traffic_below()
            }
        }
    }

    /// Compact label, e.g. `LRU,1a,32B,WA`.
    pub fn label(&self) -> String {
        match *self {
            FactorExperiment::Lru(assoc, block) => {
                let a = match assoc {
                    Associativity::Ways(n) => format!("{n}a"),
                    Associativity::Full => "fa".to_string(),
                };
                format!("LRU,{a},{block}B,WA")
            }
            FactorExperiment::Min(block, write) => {
                let w = match write {
                    MinWritePolicy::Allocate => "WA",
                    MinWritePolicy::Validate => "WV",
                };
                format!("MIN,fa,{block}B,{w}")
            }
        }
    }
}

/// A named factor: the pair of experiments that isolate it (Table 10).
#[derive(Debug, Clone, Copy)]
pub struct FactorSpec {
    /// Factor name as in Table 9 (e.g. `"Associativity"`).
    pub name: &'static str,
    /// Baseline experiment.
    pub exp1: FactorExperiment,
    /// Improved experiment.
    pub exp2: FactorExperiment,
}

/// The five factor rows of Table 10.
pub const TABLE10_FACTORS: [FactorSpec; 5] = [
    FactorSpec {
        name: "Associativity",
        exp1: FactorExperiment::Lru(Associativity::Ways(1), 32),
        exp2: FactorExperiment::Lru(Associativity::Full, 32),
    },
    FactorSpec {
        name: "Replacement",
        exp1: FactorExperiment::Lru(Associativity::Full, 32),
        exp2: FactorExperiment::Min(32, MinWritePolicy::Allocate),
    },
    FactorSpec {
        name: "Blocksize (cache)",
        exp1: FactorExperiment::Lru(Associativity::Ways(1), 32),
        exp2: FactorExperiment::Lru(Associativity::Ways(1), 4),
    },
    FactorSpec {
        name: "Blocksize (MTC)",
        exp1: FactorExperiment::Min(32, MinWritePolicy::Allocate),
        exp2: FactorExperiment::Min(4, MinWritePolicy::Allocate),
    },
    FactorSpec {
        name: "Write validate",
        exp1: FactorExperiment::Min(4, MinWritePolicy::Allocate),
        exp2: FactorExperiment::Min(4, MinWritePolicy::Validate),
    },
];

/// Result of isolating one factor for one workload (a cell of Table 9).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactorGap {
    /// Factor name.
    pub factor: String,
    /// Workload name.
    pub workload: String,
    /// Capacity used.
    pub capacity_bytes: u64,
    /// Inefficiency of experiment 1 against the reference MTC.
    pub g_exp1: f64,
    /// Inefficiency of experiment 2 against the reference MTC.
    pub g_exp2: f64,
}

impl FactorGap {
    /// The Table 9 value: `G(exp1) − G(exp2)`. Negative values mean the
    /// "improvement" increased traffic (as the paper observes for
    /// Dnasa7's associativity factor).
    pub fn delta(&self) -> f64 {
        self.g_exp1 - self.g_exp2
    }
}

/// Measure one factor's inefficiency gap for `workload` at
/// `capacity_bytes`.
///
/// Returns `None` if the reference MTC generated no traffic (degenerate
/// trace).
pub fn factor_gap<W: Workload + ?Sized>(
    spec: &FactorSpec,
    workload: &W,
    capacity_bytes: u64,
) -> Option<FactorGap> {
    let refs = workload.collect_mem_refs();
    let mtc = MinCache::simulate(&MinConfig::mtc(capacity_bytes), &refs);
    let d_mtc = mtc.traffic_below();
    if d_mtc == 0 {
        return None;
    }
    let t1 = spec.exp1.traffic(capacity_bytes, &refs);
    let t2 = spec.exp2.traffic(capacity_bytes, &refs);
    Some(FactorGap {
        factor: spec.name.to_string(),
        workload: workload.name().to_string(),
        capacity_bytes,
        g_exp1: t1 as f64 / d_mtc as f64,
        g_exp2: t2 as f64 / d_mtc as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::pattern::{UniformRandom, Zipf};

    #[test]
    fn labels_match_table_10() {
        assert_eq!(TABLE10_FACTORS[0].exp1.label(), "LRU,1a,32B,WA");
        assert_eq!(TABLE10_FACTORS[0].exp2.label(), "LRU,fa,32B,WA");
        assert_eq!(TABLE10_FACTORS[1].exp2.label(), "MIN,fa,32B,WA");
        assert_eq!(TABLE10_FACTORS[4].exp2.label(), "MIN,fa,4B,WV");
    }

    #[test]
    fn block_size_factor_dominates_for_no_spatial_locality() {
        // Uniform random single-word touches over a large extent: 32-byte
        // blocks waste 8x traffic, so the cache block-size factor is large
        // and positive.
        let w = UniformRandom::new(0, 1 << 20, 30_000, 21);
        let spec = &TABLE10_FACTORS[2];
        let gap = factor_gap(spec, &w, 16 * 1024).expect("traffic exists");
        assert!(gap.delta() > 1.0, "delta = {}", gap.delta());
    }

    #[test]
    fn write_validate_factor_positive_for_write_heavy_code() {
        let w = UniformRandom::new(0, 1 << 20, 30_000, 22).with_write_fraction(0.5);
        let gap = factor_gap(&TABLE10_FACTORS[4], &w, 16 * 1024).expect("traffic exists");
        assert!(gap.delta() > 0.0, "WV must cut write-fetch traffic");
    }

    #[test]
    fn replacement_factor_non_negative_on_reuse_heavy_code() {
        let w = Zipf::new(0, 4096, 16, 50_000, 0.9, 23);
        let gap = factor_gap(&TABLE10_FACTORS[1], &w, 4096).expect("traffic exists");
        // min replacement cannot generate more misses than LRU; traffic
        // differences from write-backs are second-order here.
        assert!(gap.delta() > -0.5, "delta = {}", gap.delta());
    }

    #[test]
    fn factor_gap_none_for_empty_trace() {
        use membw_trace::VecWorkload;
        let w = VecWorkload::new("empty", vec![]);
        assert!(factor_gap(&TABLE10_FACTORS[0], &w, 1024).is_none());
    }
}
