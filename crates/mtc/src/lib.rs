//! Minimal-traffic caches (MTCs) and traffic-inefficiency analysis.
//!
//! Section 5 of Burger, Goodman and Kägi (ISCA 1996) bounds how much a
//! cache of a given capacity could reduce off-chip traffic by simulating a
//! *minimal-traffic cache*: fully associative, one-word (4-byte) transfer
//! blocks, Belady's **min** replacement (evict the block referenced
//! furthest in the future), bypass for misses with lower priority than
//! everything resident, write-back, and write-validate allocation.
//! Traffic inefficiency `G = D_cache / D_MTC ≥ 1` (Eq. 6) then measures
//! how far a real cache sits from that bound, and Eq. 7 turns it into an
//! upper bound on effective pin bandwidth.
//!
//! Like the paper, we implement **min** — not the write-conscious optimal
//! of Horwitz et al. — so the bound is aggressive but not strictly
//! minimal (§5.2).
//!
//! # Example
//!
//! ```
//! use membw_mtc::{MinCache, MinConfig};
//! use membw_trace::pattern::Strided;
//! use membw_trace::Workload;
//!
//! // A 256-byte MTC reading a 1 KiB region once: no reuse exists, so
//! // even optimal management fetches every word exactly once.
//! let w = Strided::reads(0, 4, 256);
//! let stats = MinCache::simulate(&MinConfig::mtc(256), &w.collect_mem_refs());
//! assert_eq!(stats.bytes_fetched, 256 * 4);
//! assert_eq!(stats.demand_misses(), 256);
//! ```

pub mod factors;
pub mod inefficiency;
pub mod min;
pub mod minsweep;
pub mod nextuse;
pub mod optstack;
pub mod reference;

pub use factors::{FactorExperiment, FactorGap, FactorSpec, TABLE10_FACTORS};
pub use inefficiency::{traffic_inefficiency, InefficiencyReport};
pub use min::{MinCache, MinConfig, MinWritePolicy};
pub use minsweep::min_sweep;
pub use nextuse::NextUseIndex;
pub use optstack::OptProfile;
pub use reference::ReferenceMinCache;
