//! Traffic inefficiency `G` (Eq. 6) and the effective-pin-bandwidth upper
//! bound it implies (Eq. 7).

use crate::min::{MinCache, MinConfig};
use membw_cache::{Cache, CacheConfig, CacheStats};
use membw_trace::Workload;
use serde::{Deserialize, Serialize};

/// Traffic inefficiency of one cache against the same-size MTC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InefficiencyReport {
    /// Workload name.
    pub workload: String,
    /// Capacity in bytes (cache and MTC alike).
    pub capacity_bytes: u64,
    /// Cache-side counters.
    pub cache_stats: CacheStats,
    /// MTC-side counters.
    pub mtc_stats: CacheStats,
    /// `G = D_cache / D_MTC`; `None` if the MTC generated zero traffic.
    pub g: Option<f64>,
    /// Whether the cache exceeds the workload's footprint (paper's `<<<`).
    pub exceeds_footprint: bool,
}

impl InefficiencyReport {
    /// Table-8-style cell: `<<<` for oversized caches, else `G` to one
    /// decimal place.
    pub fn cell(&self) -> String {
        if self.exceeds_footprint {
            "<<<".to_string()
        } else {
            match self.g {
                Some(g) => format!("{g:.1}"),
                None => "-".to_string(),
            }
        }
    }
}

/// Measure the traffic inefficiency `G` of `cfg` on `workload`, against
/// the paper's MTC of the same capacity.
///
/// `footprint_bytes` marks oversized caches (0 disables the marking).
pub fn traffic_inefficiency<W: Workload + ?Sized>(
    workload: &W,
    cfg: CacheConfig,
    footprint_bytes: u64,
) -> InefficiencyReport {
    let refs = workload.collect_mem_refs();
    let mut cache = Cache::new(cfg);
    for &r in &refs {
        cache.access(r);
    }
    let cache_stats = cache.flush();
    let mtc_stats = MinCache::simulate(&MinConfig::mtc(cfg.size_bytes()), &refs);
    let g = inefficiency_of(&cache_stats, &mtc_stats);
    InefficiencyReport {
        workload: workload.name().to_string(),
        capacity_bytes: cfg.size_bytes(),
        cache_stats,
        mtc_stats,
        g,
        exceeds_footprint: footprint_bytes != 0 && cfg.size_bytes() >= footprint_bytes,
    }
}

/// `G` from two traffic counters (`None` when the MTC moved zero bytes).
pub fn inefficiency_of(cache: &CacheStats, mtc: &CacheStats) -> Option<f64> {
    let d_mtc = mtc.traffic_below();
    if d_mtc == 0 {
        None
    } else {
        Some(cache.traffic_below() as f64 / d_mtc as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::pattern::{UniformRandom, Zipf};

    #[test]
    fn g_is_at_least_one_for_low_locality_workloads() {
        let w = UniformRandom::new(0, 256 * 1024, 50_000, 3).with_write_fraction(0.2);
        let cfg = CacheConfig::builder(16 * 1024, 32).build().unwrap();
        let rep = traffic_inefficiency(&w, cfg, 0);
        let g = rep.g.expect("uniform workload generates MTC traffic");
        assert!(g >= 1.0, "G = {g}");
    }

    #[test]
    fn hot_cold_workload_has_large_g() {
        // Zipf hot spots scattered across a large table: a direct-mapped
        // 32B-block cache wastes block fill + conflicts; the MTC keeps the
        // hot words. This is the Compress/Eqntott shape of Table 8.
        let w = Zipf::new(0, 1 << 16, 64, 100_000, 1.0, 17).with_write_fraction(0.1);
        let cfg = CacheConfig::builder(64 * 1024, 32).build().unwrap();
        let rep = traffic_inefficiency(&w, cfg, 0);
        let g = rep.g.expect("traffic exists");
        assert!(g > 3.0, "expected a sizable inefficiency gap, got {g}");
    }

    #[test]
    fn cell_formatting() {
        let w = UniformRandom::new(0, 4096, 2000, 5);
        let cfg = CacheConfig::builder(1024, 32).build().unwrap();
        let rep = traffic_inefficiency(&w, cfg, 4096);
        assert!(!rep.exceeds_footprint);
        assert!(rep.cell().parse::<f64>().is_ok());
        let cfg_big = CacheConfig::builder(8192, 32).build().unwrap();
        let rep_big = traffic_inefficiency(&w, cfg_big, 4096);
        assert_eq!(rep_big.cell(), "<<<");
    }
}
