//! Future-reference (next-use) indexing for two-pass **min** simulation.

use membw_trace::{FastHashMap, MemRef};

/// Sentinel meaning "never referenced again".
pub const NEVER: u64 = u64::MAX;

/// For each position in a reference stream, the position of the *next*
/// reference to the same block.
///
/// Built with one reverse pass (the classic two-pass Belady setup
/// [Belady 1966; Sugumar & Abraham 1993]).
///
/// # Example
///
/// ```
/// use membw_mtc::nextuse::{NextUseIndex, NEVER};
/// use membw_trace::MemRef;
///
/// let refs = [MemRef::read(0, 4), MemRef::read(8, 4), MemRef::read(0, 4)];
/// let idx = NextUseIndex::build(&refs, 4);
/// assert_eq!(idx.next_use(0), 2);      // word 0 referenced again at 2
/// assert_eq!(idx.next_use(1), NEVER);  // word 2 never again
/// assert_eq!(idx.next_use(2), NEVER);
/// ```
#[derive(Debug, Clone)]
pub struct NextUseIndex {
    next: Vec<u64>,
    blocks: Vec<u64>,
    block_size: u64,
}

impl NextUseIndex {
    /// Build the index over `refs` at `block_size` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn build(refs: &[MemRef], block_size: u64) -> Self {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two, got {block_size}"
        );
        let blocks: Vec<u64> = refs.iter().map(|r| r.block(block_size)).collect();
        let mut next = vec![NEVER; refs.len()];
        let mut last_seen: FastHashMap<u64, u64> = FastHashMap::default();
        for (i, &b) in blocks.iter().enumerate().rev() {
            if let Some(&later) = last_seen.get(&b) {
                next[i] = later;
            }
            last_seen.insert(b, i as u64);
        }
        Self {
            next,
            blocks,
            block_size,
        }
    }

    /// The block granularity this index was built at.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Number of references indexed.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Position of the next reference to the block accessed at `i`
    /// ([`NEVER`] if none).
    pub fn next_use(&self, i: usize) -> u64 {
        self.next[i]
    }

    /// Block index accessed at position `i`.
    pub fn block(&self, i: usize) -> u64 {
        self.blocks[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(words: &[u64]) -> Vec<MemRef> {
        words.iter().map(|&w| MemRef::read(w * 4, 4)).collect()
    }

    #[test]
    fn chains_point_forward() {
        // words: a b a b a
        let refs = reads(&[0, 1, 0, 1, 0]);
        let idx = NextUseIndex::build(&refs, 4);
        assert_eq!(idx.next_use(0), 2);
        assert_eq!(idx.next_use(1), 3);
        assert_eq!(idx.next_use(2), 4);
        assert_eq!(idx.next_use(3), NEVER);
        assert_eq!(idx.next_use(4), NEVER);
    }

    #[test]
    fn block_granularity_groups_words() {
        // Addresses 0 and 4 share a 32-byte block.
        let refs = vec![MemRef::read(0, 4), MemRef::read(4, 4)];
        let idx = NextUseIndex::build(&refs, 32);
        assert_eq!(idx.next_use(0), 1);
        assert_eq!(idx.block(0), idx.block(1));
        let idx4 = NextUseIndex::build(&refs, 4);
        assert_eq!(idx4.next_use(0), NEVER);
    }

    #[test]
    fn empty_trace() {
        let idx = NextUseIndex::build(&[], 4);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn writes_count_as_uses() {
        let refs = vec![MemRef::read(0, 4), MemRef::write(0, 4)];
        let idx = NextUseIndex::build(&refs, 4);
        assert_eq!(idx.next_use(0), 1);
    }
}
