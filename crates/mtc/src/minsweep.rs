//! One-pass multi-capacity **min** simulation: the engine behind the
//! MTC columns of Table 8 and the MTC curves of Figure 4.
//!
//! # Why a bespoke stack engine
//!
//! Bypass-aware **min** with write-validate is *not* equivalent to the
//! no-bypass OPT stack that [`OptProfile`](crate::OptProfile) maintains
//! (a bypassed block never enters any cache, so miss counts differ —
//! trace `a b a` at one block: bypass-min misses twice, OPT misses
//! three times). Advancing one exact [`MinCache`] per capacity fixes
//! that but pays `K` hash probes and `K` heap pushes per reference. The
//! engine here exploits the policy's *inclusion* structure instead and
//! does O(1) amortized work per reference regardless of how many
//! capacities are swept.
//!
//! # The inclusion structure
//!
//! Order the capacities ascending. For the replacement rule
//! [`MinCache`] implements (evict the lexicographically largest
//! `(next_use, block)`; with bypass, allocate on a full cache only when
//! the incoming next use beats the resident maximum), the following
//! invariants hold at every point of the trace, by induction:
//!
//! 1. **Inclusion** — the residents of capacity `i` are a subset of the
//!    residents of capacity `i+1`; a block's residency is therefore a
//!    *suffix* `[L..K)` of the capacity levels.
//! 2. **Fill order** — a smaller cache is never non-full while a larger
//!    one is full, so the full caches form a *prefix* of the levels.
//! 3. **Allocate suffix** — on a miss, the resident maxima are
//!    non-decreasing in capacity, so the caches that allocate form a
//!    contiguous range `[m..L)` (with bypass, `m` is the first full
//!    level whose maximum beats the incoming next use; without bypass,
//!    `m = 0`).
//! 4. **Victim runs** — the victims of the allocating full caches are
//!    the same block over consecutive runs of levels: a victim `v` of
//!    level `i` satisfies `L_v = i` (it cannot be resident lower, its
//!    key exceeds every lower maximum) and is evicted from `[i..j)`
//!    where `j` is the first level holding a live block with a larger
//!    `(next_use, block)` pair. Eviction just advances `L_v` to `j` —
//!    residency stays a suffix.
//! 5. **Dirty suffix** — writes dirty every resident level at once and
//!    newly fetched read blocks arrive clean below older dirty copies,
//!    so the dirty levels are themselves a suffix `[D..K)` with
//!    `D >= L`.
//!
//! The engine keeps one hash map entry per block (`key`, `L`, `D`), one
//! lazily-deleted max-heap per *level* holding only the blocks whose
//! lower bound is exactly that level, and per-level resident counts.
//! Hits re-key one heap entry; misses walk the O(K) level array once.
//! Per-capacity counters are recovered from histograms over `L` (hits),
//! difference arrays over level ranges (write fetches, writebacks,
//! flushes), and a suffix histogram (write-through bytes), so no
//! per-level work is done per access. Every counter equals
//! [`MinCache::simulate`] field for field at the matching capacity
//! (enforced by unit and property tests, and by `MEMBW_SWEEP_VERIFY`
//! at suite level).

use crate::min::{MinCache, MinConfig, MinWritePolicy};
use crate::nextuse::NextUseIndex;
use membw_cache::CacheStats;
use membw_trace::{FastHashMap, MemRef};
use std::collections::BinaryHeap;

/// Run several **min** caches over one reference stream in a single
/// pass, sharing one next-use index.
///
/// Configurations that agree on write policy and bypass (the common
/// case: a capacity sweep of one organization) run on the inclusion
/// engine above. Mixed policies fall back to advancing one exact
/// [`MinCache`] per configuration — still sharing the index build.
/// Either way each result equals [`MinCache::simulate`] counter for
/// counter at that configuration.
///
/// All configurations must share one block size (the next-use index is
/// block-size specific); mixed-block sweeps should partition by block
/// size and call once per partition.
///
/// # Panics
///
/// Panics if the configurations disagree on block size.
pub fn min_sweep(cfgs: &[MinConfig], refs: &[MemRef]) -> Vec<CacheStats> {
    let Some(first) = cfgs.first() else {
        return Vec::new();
    };
    let block = first.block_size;
    assert!(
        cfgs.iter().all(|c| c.block_size == block),
        "min_sweep requires a uniform block size (got mixed sizes)"
    );
    let index = NextUseIndex::build(refs, block);
    // The shared index (next-use + block vectors, 16 bytes per
    // reference) is the sweep's big allocation; let the governor see it.
    membw_runner::ambient_governor().observe_arena_bytes(refs.len() as u64 * 16);
    if cfgs
        .iter()
        .all(|c| c.write == first.write && c.bypass == first.bypass)
    {
        InclusionSweep::new(cfgs).run(refs, &index)
    } else {
        multi_state(cfgs, refs, &index)
    }
}

/// Fallback for mixed write/bypass policies: one exact [`MinCache`]
/// state per configuration, advanced in lockstep over the shared index.
fn multi_state(cfgs: &[MinConfig], refs: &[MemRef], index: &NextUseIndex) -> Vec<CacheStats> {
    let mut caches: Vec<MinCache> = cfgs.iter().map(|c| MinCache::new(*c)).collect();
    let cancel = membw_runner::ambient_cancel_token();
    for (i, r) in refs.iter().enumerate() {
        if i.is_multiple_of(8192) {
            cancel.check();
        }
        let (b, nu) = (index.block(i), index.next_use(i));
        for cache in &mut caches {
            cache.access(*r, b, nu);
        }
    }
    caches.iter_mut().map(MinCache::flush).collect()
}

/// Per-block state: current priority key and the residency / dirty
/// suffix bounds over the (ascending) capacity levels.
struct BlockState {
    /// Next-use key as of the block's latest access (strictly increases
    /// across a block's accesses, which is what makes heap entries
    /// uniquely attributable).
    key: u64,
    /// Lowest level where resident: resident in `[level..K)`.
    level: u32,
    /// Lowest dirty level: dirty in `[dirty..K)`; `K` when clean.
    dirty: u32,
}

struct InclusionSweep {
    write: MinWritePolicy,
    bypass: bool,
    block_bytes: u64,
    /// Capacity in blocks per level, ascending.
    caps: Vec<u64>,
    /// level -> position in the caller's `cfgs` order.
    order: Vec<usize>,
    state: FastHashMap<u64, BlockState>,
    /// `heaps[l]`: lazily-deleted max-heap of `(key, block)` for blocks
    /// whose `level` is exactly `l`. An entry is live iff the block's
    /// map state matches both its key and this level.
    heaps: Vec<BinaryHeap<(u64, u64)>>,
    /// `cnt[l]`: number of blocks with `level == l` (resident count of
    /// level `i` is the prefix sum through `i`).
    cnt: Vec<u64>,
    // --- per-access accounting (assembled into CacheStats at the end)
    accesses: u64,
    reads: u64,
    writes: u64,
    request_bytes: u64,
    /// `read_hit_h[L]` / `write_hit_h[L]`: accesses that hit with
    /// residency bound `L` — level `i` hits iff `L <= i` (prefix sum).
    read_hit_h: Vec<u64>,
    write_hit_h: Vec<u64>,
    /// `wt_h[m]`: write-through bytes of writes whose allocate range
    /// started at `m` — level `i` pays iff `i < m` (suffix sum).
    wt_h: Vec<u64>,
    /// Write misses that allocated at each level (difference array over
    /// the allocate range; only charged as fetches under
    /// write-allocate).
    wfetch_diff: Vec<i64>,
    /// Writeback bytes per level (difference array over dirty evicted
    /// ranges).
    wb_diff: Vec<i64>,
}

impl InclusionSweep {
    fn new(cfgs: &[MinConfig]) -> Self {
        let k = cfgs.len();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&i| cfgs[i].capacity_blocks());
        let caps: Vec<u64> = order.iter().map(|&i| cfgs[i].capacity_blocks()).collect();
        Self {
            write: cfgs[0].write,
            bypass: cfgs[0].bypass,
            block_bytes: cfgs[0].block_size,
            caps,
            order,
            state: FastHashMap::default(),
            heaps: (0..k).map(|_| BinaryHeap::new()).collect(),
            cnt: vec![0; k],
            accesses: 0,
            reads: 0,
            writes: 0,
            request_bytes: 0,
            read_hit_h: vec![0; k + 1],
            write_hit_h: vec![0; k + 1],
            wt_h: vec![0; k + 1],
            wfetch_diff: vec![0; k + 2],
            wb_diff: vec![0; k + 2],
        }
    }

    /// Live top of `heaps[l]`, discarding stale entries.
    fn live_top(&mut self, l: usize) -> Option<(u64, u64)> {
        while let Some(&(key, block)) = self.heaps[l].peek() {
            match self.state.get(&block) {
                Some(s) if s.key == key && s.level as usize == l => return Some((key, block)),
                _ => {
                    self.heaps[l].pop();
                }
            }
        }
        None
    }

    fn run(mut self, refs: &[MemRef], index: &NextUseIndex) -> Vec<CacheStats> {
        let cancel = membw_runner::ambient_cancel_token();
        for (i, r) in refs.iter().enumerate() {
            if i.is_multiple_of(8192) {
                cancel.check();
            }
            self.access(*r, index.block(i), index.next_use(i));
        }
        self.finish()
    }

    fn access(&mut self, r: MemRef, block: u64, next_use: u64) {
        let k = self.caps.len();
        self.accesses += 1;
        self.request_bytes += u64::from(r.size);
        let is_read = r.kind.is_read();
        if is_read {
            self.reads += 1;
        } else {
            self.writes += 1;
        }

        // Residency bound: hit at [l..K), miss at [0..l).
        let l = match self.state.get_mut(&block) {
            Some(s) => {
                let l = s.level as usize;
                if is_read {
                    self.read_hit_h[l] += 1;
                } else {
                    self.write_hit_h[l] += 1;
                    s.dirty = s.level; // a write dirties every resident level
                }
                l
            }
            None => k,
        };

        // The allocate range [m..l): full levels are a prefix [0..f),
        // and with bypass only full levels whose resident maximum beats
        // the incoming key allocate (a suffix of the full prefix).
        let mut m = l;
        if l > 0 {
            // First non-full level among the missing ones.
            let mut resident = 0u64;
            let mut e_hi = l;
            for (lvl, &cap) in self.caps.iter().enumerate().take(l) {
                resident += self.cnt[lvl];
                if resident < cap {
                    e_hi = lvl;
                    break;
                }
            }
            // Running resident maximum over levels [0..=i] (pair order
            // matches MinCache's heap: lexicographic (next_use, block)).
            let mut running: Option<(u64, u64)> = None;
            if self.bypass {
                m = e_hi;
                for lvl in 0..e_hi {
                    if let Some(top) = self.live_top(lvl) {
                        running = Some(running.map_or(top, |b| b.max(top)));
                    }
                    if running.is_some_and(|(key, _)| key > next_use) {
                        m = lvl;
                        break;
                    }
                }
            } else {
                m = 0;
            }

            // Evict the full allocating levels [m..e_hi): each level's
            // victim is its resident maximum; identical victims span
            // consecutive runs (invariant 4), so each run costs one
            // state update and one heap push.
            let mut i = m;
            while i < e_hi {
                if let Some(top) = self.live_top(i) {
                    running = Some(running.map_or(top, |b| b.max(top)));
                }
                let victim = running.expect("a full level has live residents");
                // Extent of this victim: until a level holds a live
                // block with a larger (key, block) pair.
                let mut j = i + 1;
                while j < e_hi {
                    match self.live_top(j) {
                        Some(top) if top > victim => break,
                        _ => j += 1,
                    }
                }
                let (vkey, vblock) = victim;
                let s = self.state.get_mut(&vblock).expect("victim is resident");
                debug_assert_eq!(s.level as usize, i, "victim lives at the run start");
                let dirty = s.dirty as usize;
                if dirty < j {
                    self.wb_diff[dirty] += self.block_bytes as i64;
                    self.wb_diff[j] -= self.block_bytes as i64;
                }
                self.cnt[i] -= 1;
                if j < k {
                    s.level = j as u32;
                    s.dirty = s.dirty.max(j as u32);
                    self.cnt[j] += 1;
                    self.heaps[j].push((vkey, vblock));
                } else {
                    self.state.remove(&vblock);
                }
                running = None;
                i = j;
            }
        }

        // Allocation / re-key of the accessed block.
        if !is_read {
            // Write-through bytes for the bypassed levels [0..m).
            self.wt_h[m] += u64::from(r.size);
            if self.write == MinWritePolicy::Allocate && m < l {
                self.wfetch_diff[m] += 1;
                self.wfetch_diff[l] -= 1;
            }
        }
        if m < l {
            // Allocate into [m..l) (and re-key the hit levels above).
            match self.state.get_mut(&block) {
                Some(s) => {
                    self.cnt[s.level as usize] -= 1;
                    s.level = m as u32;
                    s.key = next_use;
                    if !is_read {
                        s.dirty = m as u32;
                    }
                }
                None => {
                    self.state.insert(
                        block,
                        BlockState {
                            key: next_use,
                            level: m as u32,
                            dirty: if is_read { k as u32 } else { m as u32 },
                        },
                    );
                }
            }
            self.cnt[m] += 1;
            self.heaps[m].push((next_use, block));
        } else if l < k {
            // Pure hit: re-key in place.
            let s = self.state.get_mut(&block).expect("hit block is resident");
            s.key = next_use;
            self.heaps[l].push((next_use, block));
        }
    }

    fn finish(self) -> Vec<CacheStats> {
        let k = self.caps.len();
        // Flush: every block writes back its dirty levels [D..K).
        let mut flush_diff = vec![0i64; k + 1];
        for s in self.state.values() {
            if (s.dirty as usize) < k {
                flush_diff[s.dirty as usize] += self.block_bytes as i64;
            }
        }

        let mut out = vec![CacheStats::default(); k];
        let mut read_hits = 0u64;
        let mut write_hits = 0u64;
        let mut wfetch = 0i64;
        let mut wb = 0i64;
        let mut flush = 0i64;
        // Write-through bytes reach levels *below* the allocate start.
        let mut wt_suffix: Vec<u64> = vec![0; k + 1];
        let mut acc = 0u64;
        for lvl in (0..k).rev() {
            acc += self.wt_h[lvl + 1];
            wt_suffix[lvl] = acc;
        }
        for lvl in 0..k {
            read_hits += self.read_hit_h[lvl];
            write_hits += self.write_hit_h[lvl];
            wfetch += self.wfetch_diff[lvl];
            wb += self.wb_diff[lvl];
            flush += flush_diff[lvl];
            let read_misses = self.reads - read_hits;
            let write_misses = self.writes - write_hits;
            let mut stats = CacheStats {
                accesses: self.accesses,
                reads: self.reads,
                writes: self.writes,
                read_hits,
                read_misses,
                write_hits,
                write_misses,
                request_bytes: self.request_bytes,
                // Every read miss fetches (even bypassed ones: the
                // datum crosses the pins whether or not it is kept).
                bytes_fetched: self.block_bytes * read_misses,
                bytes_written_back: wb as u64,
                bytes_written_through: wt_suffix[lvl],
                bytes_flushed: flush as u64,
                ..CacheStats::default()
            };
            if self.write == MinWritePolicy::Allocate {
                stats.bytes_fetched += self.block_bytes * wfetch as u64;
            }
            out[self.order[lvl]] = stats;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optstack::OptProfile;

    fn reads(words: &[u64]) -> Vec<MemRef> {
        words.iter().map(|&w| MemRef::read(w * 4, 4)).collect()
    }

    fn pseudo_random_trace(n: usize, words: u64, seed: u64) -> Vec<MemRef> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let w = (x >> 33) % words;
                if i % 5 == 0 {
                    MemRef::write(w * 4, 4)
                } else {
                    MemRef::read(w * 4, 4)
                }
            })
            .collect()
    }

    /// The load-bearing test: the inclusion engine must equal the
    /// two-pass MinCache counter for counter, for every policy
    /// combination the MTC and Table 10 experiments use.
    #[test]
    fn min_sweep_matches_per_capacity_simulation() {
        for seed in [3u64, 11] {
            let refs = pseudo_random_trace(1200, 40, seed);
            for (write, bypass) in [
                (MinWritePolicy::Allocate, false),
                (MinWritePolicy::Allocate, true),
                (MinWritePolicy::Validate, true),
                (MinWritePolicy::Validate, false),
            ] {
                let cfgs: Vec<MinConfig> = [16u64, 64, 256, 1024]
                    .iter()
                    .map(|&cap| MinConfig::new(cap, 4, write, bypass))
                    .collect();
                let swept = min_sweep(&cfgs, &refs);
                for (cfg, got) in cfgs.iter().zip(&swept) {
                    let want = MinCache::simulate(cfg, &refs);
                    assert_eq!(
                        *got, want,
                        "seed {seed}, {write:?} bypass={bypass}, cap {}",
                        cfg.capacity_bytes
                    );
                }
            }
        }
    }

    #[test]
    fn min_sweep_handles_unsorted_and_duplicate_capacities() {
        let refs = pseudo_random_trace(900, 32, 17);
        let cfgs: Vec<MinConfig> = [256u64, 16, 64, 16, 1024]
            .iter()
            .map(|&cap| MinConfig::mtc(cap))
            .collect();
        let swept = min_sweep(&cfgs, &refs);
        for (cfg, got) in cfgs.iter().zip(&swept) {
            assert_eq!(
                *got,
                MinCache::simulate(cfg, &refs),
                "cap {}",
                cfg.capacity_bytes
            );
        }
    }

    #[test]
    fn min_sweep_mixed_policies_fall_back_exactly() {
        let refs = pseudo_random_trace(700, 24, 9);
        let cfgs = [
            MinConfig::new(64, 4, MinWritePolicy::Allocate, false),
            MinConfig::mtc(256),
        ];
        let swept = min_sweep(&cfgs, &refs);
        for (cfg, got) in cfgs.iter().zip(&swept) {
            assert_eq!(*got, MinCache::simulate(cfg, &refs));
        }
    }

    #[test]
    fn min_sweep_no_bypass_agrees_with_opt_stack() {
        // Without bypass, min misses are exactly the OPT stack profile.
        let refs = pseudo_random_trace(1500, 48, 21);
        let cfgs: Vec<MinConfig> = [1usize, 4, 16, 64]
            .iter()
            .map(|&blocks| MinConfig::new(blocks as u64 * 4, 4, MinWritePolicy::Allocate, false))
            .collect();
        let swept = min_sweep(&cfgs, &refs);
        let profile = OptProfile::measure(&refs, 4);
        for (cfg, stats) in cfgs.iter().zip(&swept) {
            let blocks = cfg.capacity_blocks() as usize;
            assert_eq!(stats.demand_misses(), profile.misses(blocks));
        }
    }

    #[test]
    fn min_sweep_empty_inputs() {
        assert!(min_sweep(&[], &reads(&[0, 1])).is_empty());
        let cfgs = [MinConfig::mtc(64)];
        let swept = min_sweep(&cfgs, &[]);
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].accesses, 0);
    }

    #[test]
    #[should_panic(expected = "uniform block size")]
    fn min_sweep_rejects_mixed_block_sizes() {
        let cfgs = [
            MinConfig::new(64, 4, MinWritePolicy::Allocate, false),
            MinConfig::new(64, 32, MinWritePolicy::Allocate, false),
        ];
        let _ = min_sweep(&cfgs, &[]);
    }
}
