//! Executable specification of the **min** cache: the original
//! `BTreeSet`-ordered implementation.
//!
//! [`crate::min::MinCache`] replaced this structure with a lazy-deletion
//! max-heap for speed. The two make *identical* decisions — victim
//! selection is the lexicographic maximum of `(next_use, block)` in
//! both — so this slower, obviously-correct version is kept as the
//! oracle for the `min_equivalence` property test and as the baseline
//! in the `table8_inefficiency` benchmark. Do not optimise it.

use crate::min::{MinConfig, MinWritePolicy};
use crate::nextuse::NextUseIndex;
use membw_cache::CacheStats;
use membw_trace::MemRef;
use std::collections::BTreeSet;
use std::collections::HashMap;

/// The pre-overhaul **min** cache: residency in a `HashMap` (SipHash),
/// victim order in a `BTreeSet<(next_use, block)>` whose maximum is the
/// min-victim.
#[derive(Debug)]
pub struct ReferenceMinCache {
    cfg: MinConfig,
    /// block -> (next_use, dirty)
    resident: HashMap<u64, (u64, bool)>,
    /// (next_use, block), ordered so the maximum is the min-victim.
    queue: BTreeSet<(u64, u64)>,
    stats: CacheStats,
}

impl ReferenceMinCache {
    /// An empty cache.
    pub fn new(cfg: MinConfig) -> Self {
        Self {
            cfg,
            resident: HashMap::new(),
            queue: BTreeSet::new(),
            stats: CacheStats::default(),
        }
    }

    /// Simulate an entire reference stream including the end-of-run
    /// flush, and return the final counters.
    pub fn simulate(cfg: &MinConfig, refs: &[MemRef]) -> CacheStats {
        let index = NextUseIndex::build(refs, cfg.block_size);
        let mut cache = Self::new(*cfg);
        for (i, r) in refs.iter().enumerate() {
            cache.access(*r, index.block(i), index.next_use(i));
        }
        cache.flush()
    }

    fn furthest(&self) -> Option<(u64, u64)> {
        self.queue.iter().next_back().copied()
    }

    fn evict(&mut self, block: u64, next: u64) {
        let (_, dirty) = self
            .resident
            .remove(&block)
            .expect("evicted block is resident");
        let removed = self.queue.remove(&(next, block));
        debug_assert!(removed, "queue entry tracks residency");
        if dirty {
            self.stats.bytes_written_back += self.cfg.block_size;
        }
    }

    fn insert(&mut self, block: u64, next: u64, dirty: bool) {
        self.resident.insert(block, (next, dirty));
        self.queue.insert((next, block));
    }

    /// Present one access; see `MinCache::access`.
    pub fn access(&mut self, r: MemRef, block: u64, next_use: u64) -> bool {
        self.stats.accesses += 1;
        self.stats.request_bytes += u64::from(r.size);
        let is_read = r.kind.is_read();
        if is_read {
            self.stats.reads += 1;
        } else {
            self.stats.writes += 1;
        }

        if let Some(&(cur_next, dirty)) = self.resident.get(&block) {
            self.queue.remove(&(cur_next, block));
            let dirty = dirty || !is_read;
            self.insert(block, next_use, dirty);
            if is_read {
                self.stats.read_hits += 1;
            } else {
                self.stats.write_hits += 1;
            }
            return true;
        }

        if is_read {
            self.stats.read_misses += 1;
        } else {
            self.stats.write_misses += 1;
        }

        let full = self.resident.len() as u64 >= self.cfg.capacity_blocks();
        let allocate = if !full {
            true
        } else if self.cfg.bypass {
            match self.furthest() {
                Some((worst_next, _)) => next_use < worst_next,
                None => true,
            }
        } else {
            true
        };

        match (is_read, self.cfg.write) {
            (true, _) => {
                self.stats.bytes_fetched += self.cfg.block_size;
                if allocate {
                    if full {
                        let (n, b) = self.furthest().expect("full cache has entries");
                        self.evict(b, n);
                    }
                    self.insert(block, next_use, false);
                }
            }
            (false, MinWritePolicy::Allocate) => {
                if allocate {
                    self.stats.bytes_fetched += self.cfg.block_size;
                    if full {
                        let (n, b) = self.furthest().expect("full cache has entries");
                        self.evict(b, n);
                    }
                    self.insert(block, next_use, true);
                } else {
                    self.stats.bytes_written_through += u64::from(r.size);
                }
            }
            (false, MinWritePolicy::Validate) => {
                if allocate {
                    if full {
                        let (n, b) = self.furthest().expect("full cache has entries");
                        self.evict(b, n);
                    }
                    self.insert(block, next_use, true);
                } else {
                    self.stats.bytes_written_through += u64::from(r.size);
                }
            }
        }
        false
    }

    /// Write back all dirty blocks and return the final counters.
    pub fn flush(&mut self) -> CacheStats {
        let dirty_blocks = self.resident.values().filter(|(_, d)| *d).count() as u64;
        self.stats.bytes_flushed += dirty_blocks * self.cfg.block_size;
        self.resident.clear();
        self.queue.clear();
        self.stats
    }
}
