//! The one-pass sweep engines are observationally identical to direct
//! per-configuration simulation.
//!
//! `sweep_lru` (truncated per-set LRU stacks with dirty-level tracking)
//! must reproduce `Cache`'s counters — hits, misses, fetch, write-back,
//! write-through, and flush bytes — for *every* swept capacity, across
//! block sizes, write policies, allocation policies, and
//! associativities, including straddling references. `min_sweep`
//! (shared-index multi-state Belady) must likewise reproduce
//! `MinCache::simulate` per capacity. A third check triangulates
//! through an independent instrument: `ReuseProfile`'s Fenwick-tree
//! stack distances predict the same fully-associative LRU miss counts
//! the sweep engine reports.

use membw::cache::{Associativity, WriteAllocate, WritePolicy};
use membw::mtc::{min_sweep, MinCache, MinConfig, MinWritePolicy};
use membw::sweep::{direct_reference, sweep_lru, SweepSpec};
use membw::trace::reuse::ReuseProfile;
use membw::trace::{MemRef, VecWorkload};
use proptest::prelude::*;

/// Arbitrary read/write traces over a bounded address space, with
/// reference sizes up to 8 bytes so some references straddle block
/// boundaries.
fn trace_strategy(max_len: usize, words: u64) -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec((0..words, prop::bool::ANY, 1u32..3), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(w, is_write, size_words)| {
                let addr = w * 4;
                let size = (size_words * 4) as u16;
                if is_write {
                    MemRef::write(addr, size)
                } else {
                    MemRef::read(addr, size)
                }
            })
            .collect()
    })
}

fn capacities() -> Vec<u64> {
    (6..=13).map(|p| 1u64 << p).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full counter equality for the LRU stack engine across the swept
    /// capacity axis, over the geometry/policy grid the suites use.
    #[test]
    fn stack_sweep_matches_direct_cache(
        refs in trace_strategy(400, 200),
        block_pow in 2u32..6,
        ways_idx in 0usize..4,
        write_back in prop::bool::ANY,
        allocate in prop::bool::ANY,
    ) {
        let assoc = [
            Associativity::Ways(1),
            Associativity::Ways(2),
            Associativity::Ways(4),
            Associativity::Full,
        ][ways_idx];
        let spec = SweepSpec::new(1 << block_pow)
            .associativity(assoc)
            .write_policy(if write_back { WritePolicy::WriteBack } else { WritePolicy::WriteThrough })
            .write_allocate(if allocate { WriteAllocate::Allocate } else { WriteAllocate::NoAllocate });
        let caps = capacities();
        let swept = sweep_lru(&spec, &caps, &refs);
        for (&cap, got) in caps.iter().zip(&swept) {
            let want = direct_reference(&spec, cap, &refs);
            prop_assert_eq!(got, &want, "capacity {}", cap);
        }
    }

    /// Full counter equality for the multi-state min sweep, including
    /// the MTC configuration (bypass + write-validate).
    #[test]
    fn min_sweep_matches_direct_min(
        refs in trace_strategy(400, 120),
        validate in prop::bool::ANY,
        bypass in prop::bool::ANY,
    ) {
        // Write-validate requires one-word blocks and (in MinConfig)
        // bypass is free; keep the grid to what the suites use.
        let write = if validate { MinWritePolicy::Validate } else { MinWritePolicy::Allocate };
        let cfgs: Vec<MinConfig> = (3u32..10)
            .map(|p| MinConfig::new(4u64 << p, 4, write, bypass))
            .collect();
        let swept = min_sweep(&cfgs, &refs);
        for (cfg, got) in cfgs.iter().zip(&swept) {
            let want = MinCache::simulate(cfg, &refs);
            prop_assert_eq!(got, &want, "capacity {}", cfg.capacity_bytes);
        }
    }

    /// Triangulation through an independent instrument: the Fenwick
    /// stack-distance profile's fully-associative LRU miss prediction
    /// equals the sweep engine's per-capacity demand misses.
    /// (Word-granular references only: `ReuseProfile` counts one block
    /// per reference and does not split straddles the way the cache
    /// simulators do.)
    #[test]
    fn stack_sweep_agrees_with_reuse_profile(
        words in prop::collection::vec((0u64..200, prop::bool::ANY), 1..400),
        block_pow in 2u32..6,
    ) {
        let refs: Vec<MemRef> = words
            .into_iter()
            .map(|(w, is_write)| {
                if is_write { MemRef::write(w * 4, 4) } else { MemRef::read(w * 4, 4) }
            })
            .collect();
        let block = 1u64 << block_pow;
        let spec = SweepSpec::new(block).associativity(Associativity::Full);
        let caps = capacities();
        let swept = sweep_lru(&spec, &caps, &refs);
        let profile = ReuseProfile::measure(&VecWorkload::new("t", refs), block);
        for (&cap, got) in caps.iter().zip(&swept) {
            if let Some(stats) = got {
                prop_assert_eq!(
                    stats.demand_misses(),
                    profile.lru_misses(cap / block),
                    "capacity {}",
                    cap
                );
            }
        }
    }
}
