//! Integration tests for the analytic ECM fast path: predictor
//! determinism (property-tested over random workloads), the
//! `analytic-bound` invariant over every simulated Figure 3 / Figure 4
//! cell under `--audit strict` at two job counts, and byte-identity of
//! assisted simulation against the plain (`--analytic off`) output.

use membw::analytic::ecm::{self, AnalyticMode, TrafficGeometry};
use membw::audit::{self, AuditLevel};
use membw::fastpath;
use membw::runner;
use membw::sim::{Experiment, MachineSpec};
use membw::sweep::SweepMode;
use membw::targets;
use membw::trace::signature::compute_signature;
use membw::trace::{MemRef, VecWorkload};
use membw::workloads::Scale;
use proptest::prelude::*;

fn all_specs() -> Vec<MachineSpec> {
    Experiment::ALL
        .into_iter()
        .flat_map(|e| [MachineSpec::spec92(e), MachineSpec::spec95(e)])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The predictor is a pure function of the signature: recomputing
    /// the signature and re-predicting yields bit-identical output for
    /// every machine spec and traffic geometry, and every emitted
    /// prediction is finite, non-negative, and carries a bound.
    #[test]
    fn predictor_is_deterministic_and_always_bounded(
        refs in prop::collection::vec((0u64..4096, prop::bool::ANY), 40..300),
        capacity_kb in 1u64..512,
    ) {
        let refs: Vec<MemRef> = refs
            .iter()
            .map(|&(slot, write)| {
                if write {
                    MemRef::write(slot * 4, 4)
                } else {
                    MemRef::read(slot * 4, 4)
                }
            })
            .collect();
        let w = VecWorkload::new("prop", refs);
        let sig_a = compute_signature("prop", "Test", &w);
        let sig_b = compute_signature("prop", "Test", &w);
        prop_assert_eq!(&sig_a, &sig_b, "signature computation must be deterministic");

        for spec in all_specs() {
            let cfg = fastpath::ecm_config(&spec);
            let p = ecm::predict_time(&sig_a.kernel, &cfg)
                .expect("signature covers every machine-spec block size");
            let q = ecm::predict_time(&sig_b.kernel, &cfg).expect("same inputs");
            prop_assert_eq!(p.cycles.to_bits(), q.cycles.to_bits());
            prop_assert_eq!(p.bound.to_bits(), q.bound.to_bits());
            prop_assert!(p.cycles.is_finite() && p.cycles >= 0.0);
            prop_assert!(p.bound.is_finite() && p.bound > 0.0);
            let sum = p.t_p + p.t_l + p.t_b;
            prop_assert!(
                (sum - p.cycles).abs() <= 1e-9 * p.cycles.max(1.0),
                "decomposition must sum to the total: {} vs {}",
                sum,
                p.cycles
            );
        }

        let geometries = [
            TrafficGeometry::Assoc { ways: 1 },
            TrafficGeometry::Assoc { ways: 4 },
            TrafficGeometry::MtcAllocate,
            TrafficGeometry::MtcValidate,
        ];
        for geom in geometries {
            let p = ecm::predict_traffic(&sig_a.kernel, 32, capacity_kb * 1024, geom)
                .expect("32 B histogram always recorded");
            let q = ecm::predict_traffic(&sig_b.kernel, 32, capacity_kb * 1024, geom)
                .expect("same inputs");
            prop_assert_eq!(p.bytes.to_bits(), q.bytes.to_bits());
            prop_assert_eq!(p.bound.to_bits(), q.bound.to_bits());
            prop_assert!(p.bytes.is_finite() && p.bytes >= 0.0);
            prop_assert!(p.bound.is_finite() && p.bound > 0.0);
        }
    }
}

/// `analytic-bound` holds on every simulated Figure 3 and Figure 4
/// cell at test scale: under `--audit strict` a single violation turns
/// the render into an error, at one job and at eight.
#[test]
fn analytic_bound_holds_on_every_fig3_and_fig4_cell() {
    for jobs in [1usize, 8] {
        runner::set_jobs(jobs);
        for target in ["fig3", "fig4"] {
            let result = ecm::with_mode(AnalyticMode::Assist, || {
                audit::with_level(AuditLevel::Strict, || {
                    targets::render_target(target, Scale::Test, SweepMode::Stack)
                })
            });
            assert!(
                result.is_ok(),
                "analytic-bound violated on {target} at --jobs {jobs}: {:?}",
                result.err()
            );
        }
    }
}

/// Assist mode only audits — it must never perturb the simulated
/// output. This is the library-level form of the CLI guarantee that
/// `--analytic off` (the default) stays byte-identical to the seed.
#[test]
fn assist_mode_never_changes_simulated_bytes() {
    for target in fastpath::ANALYTIC_TARGETS {
        let off = ecm::with_mode(AnalyticMode::Off, || {
            targets::render_target(target, Scale::Test, SweepMode::Stack)
        })
        .expect("plain render");
        let assist = ecm::with_mode(AnalyticMode::Assist, || {
            audit::with_level(AuditLevel::Warn, || {
                targets::render_target(target, Scale::Test, SweepMode::Stack)
            })
        })
        .expect("assisted render");
        assert_eq!(
            off.stdout, assist.stdout,
            "{target}: assist mode changed the simulated bytes"
        );
        assert_eq!(
            off.artifacts.len(),
            assist.artifacts.len(),
            "{target}: assist mode changed the artifact set"
        );
    }
}

/// The analytic rendering is deliberately distinct from simulation:
/// labelled with the model version so a prediction can never be
/// mistaken for a measurement.
#[test]
fn analytic_renders_carry_the_model_label() {
    for target in fastpath::ANALYTIC_TARGETS {
        let r = fastpath::render_target_analytic(target, Scale::Test).expect("supported target");
        assert!(
            r.rendered.stdout.contains(ecm::MODEL_VERSION),
            "{target}: analytic output must name its model version"
        );
        assert!(
            r.worst_rel.is_finite(),
            "{target}: worst_rel must be finite"
        );
    }
}
