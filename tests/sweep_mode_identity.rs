//! `--sweep stack` and `--sweep direct` are observationally identical.
//!
//! For every suite the sweep engine accelerates (fig4, tables 7–9), the
//! rendered tables and the pretty-printed JSON result must be
//! byte-identical between the two modes, and independent of the job
//! count — the same contract `repro` advertises for `--jobs`.

use membw::runner::with_jobs;
use membw::sweep::SweepMode;
use membw::workloads::Scale;
use membw::{run_fig4, run_table7, run_table8, run_table9};

/// Render + serialize one suite under a given mode and job count.
fn observe(mode: SweepMode, jobs: usize, suite: &str) -> String {
    with_jobs(jobs, || match suite {
        "fig4" => {
            let (panels, tables) = run_fig4::run_with(Scale::Test, mode).expect("fig4");
            let rendered: Vec<String> = tables.iter().map(|t| t.render()).collect();
            format!(
                "{}\n{}",
                rendered.join("\n"),
                serde_json::to_string_pretty(&panels).expect("json")
            )
        }
        "table7" => {
            let (res, table) = run_table7::run_with(Scale::Test, mode).expect("table7");
            format!(
                "{}\n{}",
                table.render(),
                serde_json::to_string_pretty(&res).expect("json")
            )
        }
        "table8" => {
            let (res, table) = run_table8::run_with(Scale::Test, mode).expect("table8");
            format!(
                "{}\n{}",
                table.render(),
                serde_json::to_string_pretty(&res).expect("json")
            )
        }
        "table9" => {
            let (res, tables) = run_table9::run_with(Scale::Test, mode).expect("table9");
            let rendered: Vec<String> = tables.iter().map(|t| t.render()).collect();
            format!(
                "{}\n{}",
                rendered.join("\n"),
                serde_json::to_string_pretty(&res).expect("json")
            )
        }
        other => panic!("unknown suite {other}"),
    })
}

fn assert_identical(suite: &str) {
    let baseline = observe(SweepMode::Direct, 1, suite);
    for (mode, jobs) in [
        (SweepMode::Stack, 1),
        (SweepMode::Stack, 8),
        (SweepMode::Direct, 8),
    ] {
        let got = observe(mode, jobs, suite);
        assert_eq!(
            got, baseline,
            "{suite}: --sweep {mode} --jobs {jobs} diverges from --sweep direct --jobs 1"
        );
    }
}

#[test]
fn fig4_output_is_mode_and_jobs_invariant() {
    assert_identical("fig4");
}

#[test]
fn table7_output_is_mode_and_jobs_invariant() {
    assert_identical("table7");
}

#[test]
fn table8_output_is_mode_and_jobs_invariant() {
    assert_identical("table8");
}

#[test]
fn table9_output_is_mode_and_jobs_invariant() {
    assert_identical("table9");
}
