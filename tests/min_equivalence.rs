//! The heap-based **min** cache is observationally identical to the
//! `BTreeSet` reference implementation.
//!
//! `MinCache` (lazy-deletion max-heap, fast-hash residency map) and
//! `ReferenceMinCache` (the original ordered-set structure, kept as an
//! executable specification) must agree on *every* counter — hits,
//! misses, fetch/write-back/write-through/flush bytes — for every
//! configuration on the paper's grid: write-allocate and
//! write-validate, bypass on and off, one-word and multi-word blocks.
//! Any divergence means the heap's stale-entry discipline or its
//! `(next_use, block)` tie-break no longer reproduces the ordered-set
//! maximum.

use membw::mtc::{MinCache, MinConfig, MinWritePolicy, ReferenceMinCache};
use membw::trace::MemRef;
use proptest::prelude::*;

/// Arbitrary word-granular read/write traces over a bounded address
/// space (small enough that capacities in the test grid actually fill
/// and evict).
fn trace_strategy(max_len: usize, words: u64) -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec((0..words, prop::bool::ANY), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(w, is_write)| {
                if is_write {
                    MemRef::write(w * 4, 4)
                } else {
                    MemRef::read(w * 4, 4)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full counter equality for the paper's MTC configuration
    /// (one-word blocks, bypass, write-validate).
    #[test]
    fn heap_matches_reference_mtc(refs in trace_strategy(600, 96), cap_pow in 3u32..8) {
        let cfg = MinConfig::mtc(4u64 << cap_pow);
        let heap = MinCache::simulate(&cfg, &refs);
        let reference = ReferenceMinCache::simulate(&cfg, &refs);
        prop_assert_eq!(heap, reference);
    }

    /// Full counter equality for write-allocate min caches, with and
    /// without bypass, at 4- and 32-byte blocks (the Table 10 factor
    /// geometries).
    #[test]
    fn heap_matches_reference_allocate(
        refs in trace_strategy(600, 96),
        cap_pow in 5u32..9,
        block_pow in 0u32..2,
        bypass in prop::bool::ANY,
    ) {
        let block = 4u64 << (3 * block_pow); // 4 or 32 bytes
        let cfg = MinConfig::new(4u64 << cap_pow, block, MinWritePolicy::Allocate, bypass);
        let heap = MinCache::simulate(&cfg, &refs);
        let reference = ReferenceMinCache::simulate(&cfg, &refs);
        prop_assert_eq!(heap, reference);
    }

    /// Equality must also hold for a single-block cache, where every
    /// miss of a distinct block forces the evict/bypass boundary case.
    #[test]
    fn heap_matches_reference_one_block(refs in trace_strategy(300, 16), bypass in prop::bool::ANY) {
        let cfg = MinConfig::new(4, 4, MinWritePolicy::Validate, bypass);
        let heap = MinCache::simulate(&cfg, &refs);
        let reference = ReferenceMinCache::simulate(&cfg, &refs);
        prop_assert_eq!(heap, reference);
    }
}

/// A directed long-trace check (beyond proptest's case sizes): heavy
/// re-referencing maximises stale heap entries, the regime where lazy
/// deletion could plausibly diverge.
#[test]
fn heap_matches_reference_on_long_reuse_heavy_trace() {
    let mut x = 7u64;
    let refs: Vec<MemRef> = (0..200_000)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Zipf-ish: half the accesses hit an 8-word hot set.
            let w = if i % 2 == 0 {
                (x >> 33) % 8
            } else {
                (x >> 33) % 4096
            };
            if (x >> 13).is_multiple_of(3) {
                MemRef::write(w * 4, 4)
            } else {
                MemRef::read(w * 4, 4)
            }
        })
        .collect();
    for cfg in [
        MinConfig::mtc(1024),
        MinConfig::new(4096, 32, MinWritePolicy::Allocate, true),
        MinConfig::new(4096, 32, MinWritePolicy::Allocate, false),
    ] {
        assert_eq!(
            MinCache::simulate(&cfg, &refs),
            ReferenceMinCache::simulate(&cfg, &refs),
            "divergence at {cfg:?}"
        );
    }
}
