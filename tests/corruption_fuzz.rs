//! Deterministic mutation-fuzz harness over every artifact the
//! pipeline persists or caches: `.mwtr` trace bytes, checkpoint files,
//! and in-memory trace arenas.
//!
//! 1100 seeded mutations (bit flips, random-byte splices, truncations)
//! with two invariants, checked on every single one:
//!
//! * **never panic** — a mutated artifact yields a structured error or
//!   a quarantine-and-recompute, not a crash;
//! * **never silently wrong** — whenever the pipeline accepts an
//!   artifact, the data it serves is byte-for-byte the clean data.
//!
//! Seeds are fixed (`SmallRng::seed_from_u64`), so a failure reproduces
//! exactly; the CI fuzz-smoke job runs this same harness.

use membw::analytic::ecm::{self, TrafficGeometry};
use membw::runner::{with_checkpoint, CheckpointConfig, Runner};
use membw::trace::io::{read_refs, write_refs};
use membw::trace::pattern::Zipf;
use membw::trace::replay::TraceCache;
use membw::trace::signature::{compute_signature, SignatureCache, SignatureStore};
use membw::trace::{MemRef, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fs;

const TRACE_MUTATIONS: u64 = 400;
const CHECKPOINT_MUTATIONS: u64 = 400;
const ARENA_MUTATIONS: u64 = 300;
const SIGNATURE_MUTATIONS: u64 = 300;

/// Apply one seeded mutation in place: a bit flip, a byte splice, or a
/// truncation (occasionally to empty).
fn mutate(bytes: &mut Vec<u8>, rng: &mut SmallRng) {
    if bytes.is_empty() {
        return;
    }
    match rng.gen_range(0u32..4) {
        0 => {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] ^= 1 << rng.gen_range(0u32..8);
        }
        1 => {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] = (rng.gen::<u32>() & 0xff) as u8;
        }
        2 => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        _ => {
            // Short-write shape: drop a small tail, as a torn write
            // that survived a crash would.
            let cut = rng.gen_range(1..=bytes.len().min(16));
            bytes.truncate(bytes.len() - cut);
        }
    }
}

#[test]
fn mutated_trace_bytes_never_panic_and_never_corrupt() {
    let w = Zipf::new(0, 4096, 16, 2_000, 0.7, 3).with_write_fraction(0.25);
    let clean: Vec<MemRef> = w.collect_mem_refs();
    let mut sealed = Vec::new();
    write_refs(&mut sealed, &clean).expect("write clean trace");

    let mut rejected = 0u64;
    for i in 0..TRACE_MUTATIONS {
        let mut rng = SmallRng::seed_from_u64(0xA5A5_0000 + i);
        let mut bytes = sealed.clone();
        mutate(&mut bytes, &mut rng);
        if bytes == sealed {
            continue; // truncation of 0 bytes etc. — nothing mutated
        }
        match read_refs(&bytes[..]) {
            // A mutation the reader accepts must be semantically inert
            // (e.g. a checksum-preserving no-op); anything else is
            // silent corruption.
            Ok(refs) => assert_eq!(
                refs, clean,
                "seed {i}: reader accepted a mutated trace with different data"
            ),
            Err(_) => rejected += 1,
        }
    }
    assert!(
        rejected > TRACE_MUTATIONS / 2,
        "most mutations must be structurally rejected, got {rejected}"
    );
}

#[test]
fn mutated_checkpoint_files_never_panic_and_never_corrupt() {
    let root = std::env::temp_dir().join(format!("membw_fuzz_ckpt_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let cfg = Some(CheckpointConfig {
        root: root.clone(),
        resume: true,
    });
    // Two jobs with float payloads: exercises the JSON round trip.
    let job = |i: usize| -> Vec<f64> {
        (0..8)
            .map(|k| (i * 8 + k) as f64 * 0.1 + 1.0 / (k + 1) as f64)
            .collect()
    };
    let clean: Vec<Vec<f64>> = with_checkpoint(cfg.clone(), || {
        Runner::new(1).checkpointed("fuzz", "v1/fuzz/2", 2, job)
    })
    .into_iter()
    .map(|r| r.expect("clean run"))
    .collect();

    // The archived artifact for job 0, re-mutated from clean bytes on
    // every iteration.
    let dir = fs::read_dir(&root)
        .expect("batch dir exists")
        .flatten()
        .next()
        .expect("one batch")
        .path();
    let artifact = dir.join("0.json");
    let clean_bytes = fs::read(&artifact).expect("artifact exists");

    for i in 0..CHECKPOINT_MUTATIONS {
        let mut rng = SmallRng::seed_from_u64(0xC4D5_0000 + i);
        let mut bytes = clean_bytes.clone();
        mutate(&mut bytes, &mut rng);
        fs::write(&artifact, &bytes).expect("write mutated artifact");
        let resumed: Vec<Vec<f64>> = with_checkpoint(cfg.clone(), || {
            Runner::new(1).checkpointed("fuzz", "v1/fuzz/2", 2, job)
        })
        .into_iter()
        .map(|r| r.expect("resume never fails outright"))
        .collect();
        // Bit-exact: a quarantined artifact is recomputed, an accepted
        // one must carry exactly the clean values.
        assert_eq!(resumed, clean, "seed {i}: resume served corrupt data");
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn mutated_signature_files_never_yield_a_wrong_prediction() {
    let root = std::env::temp_dir().join(format!("membw_fuzz_sig_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let w = Zipf::new(0, 4096, 16, 2_000, 0.7, 3).with_write_fraction(0.25);
    let clean = compute_signature("fuzz", "Test", &w);
    // The reference prediction every accepted-or-recomputed signature
    // must reproduce exactly.
    let clean_pred = ecm::predict_traffic(
        &clean.kernel,
        32,
        64 * 1024,
        TrafficGeometry::Assoc { ways: 1 },
    )
    .expect("32 B histogram recorded");

    let store = SignatureStore::open(&root).expect("open signature store");
    store.save(&clean).expect("persist clean signature");
    let path = store.path_for("fuzz", "Test");
    let clean_bytes = fs::read(&path).expect("signature file exists");

    let mut rejected = 0u64;
    for i in 0..SIGNATURE_MUTATIONS {
        let mut rng = SmallRng::seed_from_u64(0x51D0_0000 + i);
        let mut bytes = clean_bytes.clone();
        mutate(&mut bytes, &mut rng);
        if bytes == clean_bytes {
            continue;
        }
        fs::write(&path, &bytes).expect("write mutated signature");
        // Load path: either the seal check quarantines the file (and a
        // fresh cache recomputes the exact clean signature), or the
        // accepted content IS the clean signature. Either way the
        // prediction downstream is bit-identical — a damaged signature
        // can cost a recompute, never a wrong prediction.
        match store.load("fuzz", "Test") {
            Some(sig) => assert_eq!(
                sig, clean,
                "seed {i}: store accepted a mutated signature with different data"
            ),
            None => {
                rejected += 1;
                assert!(
                    !path.exists(),
                    "seed {i}: corrupt entry must be quarantined"
                );
                let cache =
                    SignatureCache::with_store(Some(SignatureStore::open(&root).expect("reopen")));
                let recomputed = cache.get_or_compute("fuzz", "Test", &w);
                assert_eq!(*recomputed, clean, "seed {i}: recompute must match clean");
            }
        }
        let served = store
            .load("fuzz", "Test")
            .expect("entry re-persisted after recompute");
        let pred = ecm::predict_traffic(
            &served.kernel,
            32,
            64 * 1024,
            TrafficGeometry::Assoc { ways: 1 },
        )
        .expect("32 B histogram recorded");
        assert_eq!(
            pred.bytes.to_bits(),
            clean_pred.bytes.to_bits(),
            "seed {i}: prediction drifted"
        );
        assert_eq!(
            pred.bound.to_bits(),
            clean_pred.bound.to_bits(),
            "seed {i}: bound drifted"
        );
        // Restore the sealed clean bytes for the next mutation round.
        fs::write(&path, &clean_bytes).expect("restore clean signature");
    }
    assert!(
        rejected > SIGNATURE_MUTATIONS / 2,
        "most mutations must be structurally rejected, got {rejected}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn mutated_trace_arenas_never_panic_and_never_corrupt() {
    let cache = TraceCache::with_budget(64 * 1024 * 1024);
    let w = Zipf::new(0, 4096, 16, 2_000, 0.7, 3).with_write_fraction(0.25);
    let clean: Vec<MemRef> = w.collect_mem_refs();
    let first = cache.get_or_record("fuzz", "t", &w).expect("cache enabled");
    assert_eq!(first.collect_mem_refs(), clean);

    for i in 0..ARENA_MUTATIONS {
        let mut rng = SmallRng::seed_from_u64(0xBEEF_0000 + i);
        let failures_before = cache.stats().verify_failures;
        assert!(
            cache.corrupt_cached_trace("fuzz", "t", rng.gen::<u64>()),
            "seed {i}: recording must be resident"
        );
        let served = cache.get_or_record("fuzz", "t", &w).expect("cache enabled");
        assert_eq!(
            served.collect_mem_refs(),
            clean,
            "seed {i}: cache served a corrupted arena"
        );
        assert_eq!(
            cache.stats().verify_failures,
            failures_before + 1,
            "seed {i}: the verify failure must be counted"
        );
    }
}
