//! Property tests for the functional cache simulator, cross-validated
//! against the independent reuse-distance implementation.

use membw::cache::{
    Associativity, Cache, CacheConfig, ReplacementPolicy, WriteAllocate, WritePolicy,
};
use membw::trace::reuse::ReuseProfile;
use membw::trace::{MemRef, VecWorkload};
use proptest::prelude::*;

fn trace_strategy(max_len: usize, words: u64) -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec((0..words, prop::bool::ANY), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(w, wr)| {
                if wr {
                    MemRef::write(w * 4, 4)
                } else {
                    MemRef::read(w * 4, 4)
                }
            })
            .collect()
    })
}

fn run(refs: &[MemRef], cfg: CacheConfig) -> membw::cache::CacheStats {
    let mut c = Cache::new(cfg);
    for &r in refs {
        c.access(r);
    }
    c.flush()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A fully-associative LRU cache's miss count must match the stack
    /// -distance oracle exactly (two independent implementations).
    #[test]
    fn fa_lru_matches_reuse_profile(refs in trace_strategy(400, 128), cap_pow in 2u32..6) {
        let blocks = 1u64 << cap_pow;
        let cfg = CacheConfig::builder(blocks * 32, 32)
            .associativity(Associativity::Full)
            .build()
            .expect("valid geometry");
        let stats = run(&refs, cfg);
        let profile = ReuseProfile::measure(&VecWorkload::new("t", refs), 32);
        prop_assert_eq!(stats.demand_misses(), profile.lru_misses(blocks));
    }

    /// LRU inclusion: a bigger fully-associative LRU cache never misses
    /// more (the stack property).
    #[test]
    fn lru_inclusion_property(refs in trace_strategy(400, 256)) {
        let mut last = u64::MAX;
        for pow in 2u32..7 {
            let cfg = CacheConfig::builder((32u64) << pow, 32)
                .associativity(Associativity::Full)
                .build()
                .expect("valid geometry");
            let misses = run(&refs, cfg).demand_misses();
            prop_assert!(misses <= last, "stack property violated at 2^{pow}");
            last = misses;
        }
    }

    /// Traffic conservation for write-back write-allocate caches: every
    /// fetched byte is a miss x block, and write-backs never exceed
    /// fetched blocks (a block must be fetched before it can be dirty).
    #[test]
    fn writeback_conservation(refs in trace_strategy(400, 128), assoc in 0u32..3) {
        let assoc = match assoc {
            0 => Associativity::Ways(1),
            1 => Associativity::Ways(2),
            _ => Associativity::Full,
        };
        let cfg = CacheConfig::builder(1024, 32).associativity(assoc).build().expect("valid");
        let stats = run(&refs, cfg);
        prop_assert_eq!(stats.bytes_fetched, stats.demand_misses() * 32);
        prop_assert!(
            stats.bytes_written_back + stats.bytes_flushed <= stats.bytes_fetched,
            "more written back than ever fetched"
        );
        prop_assert_eq!(stats.accesses, refs.len() as u64);
    }

    /// Write-through caches never hold dirty data: flush traffic is
    /// zero and write-through bytes equal write count x word size.
    #[test]
    fn write_through_never_dirty(refs in trace_strategy(300, 64)) {
        let cfg = CacheConfig::builder(512, 32)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .expect("valid");
        let stats = run(&refs, cfg);
        prop_assert_eq!(stats.bytes_flushed, 0);
        prop_assert_eq!(stats.bytes_written_back, 0);
        prop_assert_eq!(stats.bytes_written_through, stats.writes * 4);
    }

    /// No-write-allocate: write misses never fetch.
    #[test]
    fn no_allocate_write_misses_do_not_fetch(refs in trace_strategy(300, 64)) {
        let cfg = CacheConfig::builder(512, 32)
            .write_allocate(WriteAllocate::NoAllocate)
            .build()
            .expect("valid");
        let stats = run(&refs, cfg);
        prop_assert_eq!(stats.bytes_fetched, stats.read_misses * 32);
    }

    /// Replacement policy cannot change total access classification —
    /// only hit/miss counts — and every policy keeps the accounting
    /// identity intact.
    #[test]
    fn all_policies_keep_accounting(refs in trace_strategy(300, 128)) {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random(7),
            ReplacementPolicy::Plru,
        ] {
            let cfg = CacheConfig::builder(1024, 32)
                .associativity(Associativity::Ways(4))
                .replacement(policy)
                .build()
                .expect("valid");
            let stats = run(&refs, cfg);
            prop_assert_eq!(stats.accesses, refs.len() as u64, "policy {:?}", policy);
            prop_assert_eq!(stats.demand_hits() + stats.demand_misses(), stats.accesses);
            prop_assert_eq!(
                stats.traffic_below(),
                stats.bytes_fetched + stats.bytes_prefetched + stats.bytes_written_back
                    + stats.bytes_written_through + stats.bytes_flushed
            );
        }
    }

    /// Higher associativity at fixed size never increases misses for
    /// workloads without... actually it CAN (Belady anomaly does not
    /// apply to LRU: LRU is a stack algorithm in associativity only for
    /// fully-assoc). Instead assert a weaker, always-true property:
    /// hit + miss identity and deterministic replay.
    #[test]
    fn deterministic_replay(refs in trace_strategy(200, 64)) {
        let cfg = CacheConfig::builder(512, 32)
            .associativity(Associativity::Ways(2))
            .build()
            .expect("valid");
        let a = run(&refs, cfg);
        let b = run(&refs, cfg);
        prop_assert_eq!(a, b);
    }
}
