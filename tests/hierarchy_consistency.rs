//! Cross-crate consistency: the functional hierarchy, the timing memory
//! system, and the suite registry must agree with one another.

use membw::cache::{CacheConfig, Hierarchy};
use membw::sim::{Experiment, MachineSpec, MemSystem, MemoryMode};
use membw::trace::stats::TraceStats;
use membw::workloads::{suite92, suite95, Scale};

#[test]
fn hierarchy_traffic_chains_between_levels() {
    for b in suite92(Scale::Test) {
        let mut h = Hierarchy::new(vec![
            CacheConfig::builder(8 * 1024, 32).build().expect("valid"),
            CacheConfig::builder(128 * 1024, 64).build().expect("valid"),
        ]);
        b.workload().for_each_mem_ref(&mut |r| {
            h.access(r);
        });
        h.flush();
        let stats = h.stats();
        assert_eq!(
            stats[0].traffic_below(),
            stats[1].request_bytes,
            "{}: L1 below-traffic must equal L2 request bytes",
            b.name()
        );
        assert_eq!(
            h.memory_traffic(),
            stats[1].traffic_below(),
            "{}: memory traffic is the last level's below-traffic",
            b.name()
        );
    }
}

#[test]
fn timing_memsys_functional_counts_match_pure_functional_hierarchy() {
    // The timed memory system embeds the same functional caches; its
    // hit/miss counts must be independent of the memory mode.
    let spec = MachineSpec::spec92(Experiment::C);
    for b in suite92(Scale::Test).iter().take(3) {
        let mut full = MemSystem::new(&spec.mem, MemoryMode::Full);
        let mut lat = MemSystem::new(&spec.mem, MemoryMode::LatencyOnly);
        let mut t = 0u64;
        b.workload().for_each_mem_ref(&mut |r| {
            if r.kind.is_read() {
                t = full.load(t, r.addr);
                lat.load(t, r.addr);
            } else {
                full.store(t, r.addr);
                lat.store(t, r.addr);
            }
        });
        assert_eq!(
            full.l1_stats().demand_misses(),
            lat.l1_stats().demand_misses(),
            "{}: functional behaviour must not depend on timing mode",
            b.name()
        );
        assert_eq!(full.stats().memory_traffic, lat.stats().memory_traffic);
    }
}

#[test]
fn declared_footprints_bound_measured_footprints() {
    for b in suite92(Scale::Test)
        .iter()
        .chain(suite95(Scale::Test).iter())
    {
        let measured = TraceStats::of(&b.workload()).footprint_bytes(4);
        assert!(
            measured <= b.footprint_bytes,
            "{}: measured {} > declared {}",
            b.name(),
            measured,
            b.footprint_bytes
        );
        assert!(
            measured * 8 >= b.footprint_bytes,
            "{}: declared footprint is wildly above what the trace touches ({measured} vs {})",
            b.name(),
            b.footprint_bytes
        );
    }
}

#[test]
fn all_benchmarks_replay_identically() {
    for b in suite92(Scale::Test)
        .iter()
        .chain(suite95(Scale::Test).iter())
    {
        let a = b.workload().collect_mem_refs();
        let c = b.workload().collect_mem_refs();
        assert_eq!(a, c, "{} must be deterministic", b.name());
        assert!(!a.is_empty());
    }
}
