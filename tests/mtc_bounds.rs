//! Property tests for the minimal-traffic cache: Belady optimality and
//! the G ≥ 1 lower-bound structure of §5 hold on *arbitrary* traces.

use membw::cache::{Associativity, Cache, CacheConfig};
use membw::mtc::{MinCache, MinConfig, MinWritePolicy};
use membw::trace::{AccessKind, MemRef};
use proptest::prelude::*;

/// Arbitrary word-granular traces over a bounded address space.
fn trace_strategy(max_len: usize, words: u64) -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec((0..words, prop::bool::ANY), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(w, is_write)| {
                if is_write {
                    MemRef::write(w * 4, 4)
                } else {
                    MemRef::read(w * 4, 4)
                }
            })
            .collect()
    })
}

fn lru_fa(refs: &[MemRef], capacity: u64, block: u64) -> membw::cache::CacheStats {
    let cfg = CacheConfig::builder(capacity, block)
        .associativity(Associativity::Full)
        .build()
        .expect("valid geometry");
    let mut c = Cache::new(cfg);
    for &r in refs {
        c.access(r);
    }
    c.flush()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Belady's min never misses more than LRU at equal geometry
    /// (mandatory allocation, no bypass — the classic optimality
    /// setting).
    #[test]
    fn min_misses_at_most_lru(refs in trace_strategy(400, 64), cap_pow in 3u32..7) {
        let cap = 4u64 << cap_pow; // 32..256 bytes = 8..64 word-blocks
        let min_cfg = MinConfig::new(cap, 4, MinWritePolicy::Allocate, false);
        let min = MinCache::simulate(&min_cfg, &refs);
        let lru = lru_fa(&refs, cap, 4);
        prop_assert!(
            min.demand_misses() <= lru.demand_misses(),
            "min {} > lru {}", min.demand_misses(), lru.demand_misses()
        );
    }

    /// The paper's MTC (bypass + write-validate) generates no more
    /// traffic than the fully-associative LRU cache of the same size —
    /// the structural reason G >= 1 in Table 8. Checked through the
    /// runtime auditor's `mtc-bound` invariant (§5) so the test asserts
    /// exactly what `repro --audit strict` enforces.
    #[test]
    fn mtc_traffic_lower_bounds_lru(refs in trace_strategy(400, 96), cap_pow in 3u32..7) {
        let cap = 4u64 << cap_pow;
        let mtc = MinCache::simulate(&MinConfig::mtc(cap), &refs);
        let lru = lru_fa(&refs, cap, 4);
        let mut audit = membw::Auditor::strict("mtc_bounds");
        audit.mtc_bound(&format!("random trace @ {cap}B"), mtc.traffic_below(), lru.traffic_below());
        prop_assert!(audit.finish().is_ok(), "mtc {} > lru {}", mtc.traffic_below(), lru.traffic_below());
    }

    /// Growing the MTC can only shrink its traffic (the monotonicity
    /// Figure 4's thick curves display).
    #[test]
    fn mtc_traffic_monotone_in_capacity(refs in trace_strategy(300, 64)) {
        let small = MinCache::simulate(&MinConfig::mtc(64), &refs);
        let big = MinCache::simulate(&MinConfig::mtc(512), &refs);
        prop_assert!(big.traffic_below() <= small.traffic_below());
    }

    /// Bypass never hurts: an MTC with bypass moves no more bytes than
    /// the same min cache forced to allocate.
    #[test]
    fn bypass_never_increases_traffic(refs in trace_strategy(300, 64)) {
        let with = MinCache::simulate(
            &MinConfig::new(128, 4, MinWritePolicy::Allocate, true), &refs);
        let without = MinCache::simulate(
            &MinConfig::new(128, 4, MinWritePolicy::Allocate, false), &refs);
        prop_assert!(with.traffic_below() <= without.traffic_below());
    }

    /// Write-validate vs write-allocate at one-word blocks: validate
    /// can only remove fetch traffic.
    #[test]
    fn write_validate_never_increases_traffic(refs in trace_strategy(300, 64)) {
        let wv = MinCache::simulate(
            &MinConfig::new(128, 4, MinWritePolicy::Validate, true), &refs);
        let wa = MinCache::simulate(
            &MinConfig::new(128, 4, MinWritePolicy::Allocate, true), &refs);
        prop_assert!(wv.traffic_below() <= wa.traffic_below());
    }

    /// Traffic conservation: every byte the MTC counts is a fetch, a
    /// write-back, a write-through, or a flush write-back, and read
    /// fetches equal read misses times the word size.
    #[test]
    fn mtc_accounting_identity(refs in trace_strategy(300, 64)) {
        let stats = MinCache::simulate(&MinConfig::mtc(128), &refs);
        prop_assert_eq!(
            stats.traffic_below(),
            stats.bytes_fetched + stats.bytes_written_back
                + stats.bytes_written_through + stats.bytes_flushed
        );
        prop_assert_eq!(stats.bytes_fetched, stats.read_misses * 4);
        let reads = refs.iter().filter(|r| r.kind == AccessKind::Read).count() as u64;
        prop_assert_eq!(stats.reads, reads);
        prop_assert_eq!(stats.read_hits + stats.read_misses, reads);
    }
}
