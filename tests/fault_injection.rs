//! Fault tolerance end to end at the library level: an injected
//! per-job panic (or stall) fails that job alone — siblings complete,
//! unaffected batches render byte-identically with or without the
//! fault at any `--jobs` setting, and the failure is reported as a
//! typed error naming the job.

use membw::runner::{with_job_timeout, with_jobs};
use membw::workloads::Scale;
use membw::{run_table7, run_table8};
use std::sync::Mutex;
use std::time::Duration;

/// `MEMBW_FAULT_*` are process-global; tests that set them must not
/// overlap.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Set an env var for the guard's lifetime.
struct EnvGuard(&'static str);

impl EnvGuard {
    fn set(key: &'static str, value: &str) -> Self {
        std::env::set_var(key, value);
        EnvGuard(key)
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        std::env::remove_var(self.0);
    }
}

#[test]
fn injected_panic_fails_one_job_and_names_it() {
    let _lock = ENV_LOCK.lock().unwrap();
    let _env = EnvGuard::set("MEMBW_FAULT_INJECT", "table7:2");
    for jobs in [1, 8] {
        let err = with_jobs(jobs, || run_table7::run(Scale::Test))
            .expect_err("the injected fault must surface");
        let failures = err.failed_jobs();
        assert_eq!(failures.len(), 1, "exactly the injected job fails");
        let f = &failures[0];
        assert_eq!(f.label, "table7");
        assert_eq!(f.index, 2);
        assert_eq!(f.attempts, 1, "no retries configured");
        assert!(!f.job.is_empty(), "failure names the benchmark");
        assert!(
            f.error.contains("injected fault at table7:2"),
            "panic message preserved: {}",
            f.error
        );
    }
}

#[test]
fn unaffected_batches_render_byte_identically_under_a_fault() {
    let _lock = ENV_LOCK.lock().unwrap();
    let (_, clean_serial) =
        with_jobs(1, || run_table8::run(Scale::Test)).expect("clean run succeeds");
    let clean = clean_serial.render();

    // A fault in table7 must not perturb table8's output in any way,
    // serial or parallel — the injection hooks key on the batch label.
    let _env = EnvGuard::set("MEMBW_FAULT_INJECT", "table7:0");
    assert!(
        with_jobs(1, || run_table7::run(Scale::Test)).is_err(),
        "the fault is live"
    );
    for jobs in [1, 8] {
        let (_, faulted) =
            with_jobs(jobs, || run_table8::run(Scale::Test)).expect("table8 is healthy");
        assert_eq!(
            faulted.render(),
            clean,
            "table8 must be byte-identical with the table7 fault live at jobs={jobs}"
        );
    }
}

#[test]
fn injected_stall_trips_the_job_deadline() {
    let _lock = ENV_LOCK.lock().unwrap();
    // Job 1 sleeps 1.2 s against a 300 ms deadline; healthy Test-scale
    // jobs finish well inside it.
    let _env = EnvGuard::set("MEMBW_FAULT_SLOW", "table7:1:1200");
    let err = with_job_timeout(Some(Duration::from_millis(300)), || {
        with_jobs(4, || run_table7::run(Scale::Test))
    })
    .expect_err("the stalled job must be marked failed");
    let failures = err.failed_jobs();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].index, 1);
    assert!(
        failures[0].error.contains("deadline"),
        "timeout reported as a deadline overrun: {}",
        failures[0].error
    );
}
