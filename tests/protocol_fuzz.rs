//! Protocol fuzz over the daemon's wire surface: seeded mutations of a
//! valid request frame thrown at a live in-process server over raw
//! Unix sockets.
//!
//! Three invariants, checked on every single mutation:
//!
//! * **never panic** — a panic hook counts every panic in the process;
//!   the fuzz ends with that counter untouched;
//! * **never a wrong answer** — every reply line must parse as a
//!   [`ServiceResponse`]; an `ok` reply must be self-consistent
//!   (`fnv64` matches its own stdout), and when the mutated frame still
//!   decodes to the canonical request, its stdout must be byte-exact;
//! * **never a leaked slot** — after hundreds of abandoned, torn, and
//!   malformed connections, the full `conn_limit` budget is still
//!   available (the `ConnSlot` RAII regression: a leak would turn
//!   admission into permanent busy-rejection).
//!
//! Seeds are fixed (`SmallRng::seed_from_u64`), so a failure
//! reproduces exactly — the same contract as `corruption_fuzz.rs` for
//! storage artifacts, applied to the wire.

use membw::runner::{persist, CancelReason, CancelToken};
use membw::service::{ServiceRequest, ServiceResponse, STATS_TARGET};
use membw::sweep::SweepMode;
use membw::targets;
use membw::workloads::Scale;
use membw_serve::{client, serve, Endpoint, ResultStore, ServeConfig, Server};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const FUZZ_MUTATIONS: u64 = 340;
const CONN_LIMIT: usize = 4;
const MAX_FRAME: usize = 2048;

static PANICS: AtomicU64 = AtomicU64::new(0);

fn request(target: &str) -> ServiceRequest {
    let mut req = ServiceRequest::new(target);
    req.scale = "test".to_string();
    req
}

fn reference(target: &str) -> String {
    targets::render_target(target, Scale::Test, SweepMode::Stack)
        .expect("reference render")
        .stdout
}

/// One seeded mutation in place: bit flip, byte splice (any value —
/// including `\n`, which splits the frame, and non-UTF-8 bytes),
/// random-byte insertion, truncation, tail chop, or oversize padding.
fn mutate(bytes: &mut Vec<u8>, rng: &mut SmallRng) {
    match rng.gen_range(0u32..6) {
        0 => {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] ^= 1 << rng.gen_range(0u32..8);
        }
        1 => {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] = (rng.gen::<u32>() & 0xff) as u8;
        }
        2 => {
            let pos = rng.gen_range(0..=bytes.len());
            bytes.insert(pos, (rng.gen::<u32>() & 0xff) as u8);
        }
        3 => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        4 => {
            let cut = rng.gen_range(1..=bytes.len().min(16));
            bytes.truncate(bytes.len() - cut);
        }
        _ => {
            // Oversize: pad past the frame bound so the daemon must
            // refuse it mid-accumulation.
            let pad = MAX_FRAME + rng.gen_range(1usize..512);
            let at = bytes.len().saturating_sub(1);
            for _ in 0..pad {
                bytes.insert(at, b'x');
            }
        }
    }
}

/// Throw one frame at the daemon over a raw socket and collect every
/// reply byte until the server closes. `shutdown(Write)` after the
/// frame keeps the keepalive server from waiting out its read timeout.
fn exchange_raw(socket: &std::path::Path, frame: &[u8]) -> Vec<u8> {
    let mut s = UnixStream::connect(socket).expect("daemon socket");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // The daemon may legitimately kill the connection mid-write
    // (oversize refusal); a send error is an acceptable outcome.
    let _ = s.write_all(frame);
    let _ = s.shutdown(Shutdown::Write);
    let mut reply = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break, // reset/timeout: the close outcome
        }
    }
    reply
}

/// The wire contract for whatever came back: every *complete* line
/// parses as a [`ServiceResponse`]; `ok` replies are self-consistent;
/// a reply to the untouched canonical request is byte-exact.
fn assert_replies_structured(reply: &[u8], sent: &[u8], canonical: &ServiceRequest, expected: &str, seed: u64) {
    let mut rest = reply;
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        let line = std::str::from_utf8(&rest[..pos])
            .unwrap_or_else(|e| panic!("seed {seed}: reply line is not UTF-8: {e}"));
        rest = &rest[pos + 1..];
        if line.trim().is_empty() {
            continue;
        }
        let resp: ServiceResponse = serde_json::from_str(line.trim())
            .unwrap_or_else(|e| panic!("seed {seed}: unstructured reply {line:?}: {e}"));
        if let ServiceResponse::Ok { stdout, fnv64, .. } = &resp {
            assert_eq!(
                *fnv64,
                format!("{:016x}", persist::fnv64(stdout)),
                "seed {seed}: ok reply is not self-consistent"
            );
            // A mutation that survives as the canonical request must
            // still get the canonical bytes — anything else is the
            // "wrong answer" this fuzz exists to rule out.
            let sent_line = sent.split(|&b| b == b'\n').next().unwrap_or(&[]);
            if let Ok(txt) = std::str::from_utf8(sent_line) {
                if let Ok(req) = serde_json::from_str::<ServiceRequest>(txt.trim()) {
                    if req == *canonical {
                        assert_eq!(stdout, expected, "seed {seed}: wrong answer");
                    }
                }
            }
        }
    }
    assert!(
        rest.is_empty(),
        "seed {seed}: daemon closed mid-reply-frame on an intact connection: {:?}",
        String::from_utf8_lossy(rest)
    );
}

#[test]
fn fuzzed_frames_never_panic_never_answer_wrong_never_leak_a_slot() {
    // Panic accounting for the whole process: the daemon runs in this
    // process, so any handler panic lands in this hook.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        PANICS.fetch_add(1, Ordering::SeqCst);
        prev(info);
    }));

    let base = std::env::temp_dir().join(format!("membw_protofuzz_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let socket = base.join("fuzz.sock");
    let endpoint = Endpoint::Unix(socket.clone());

    let config = ServeConfig {
        max_inflight: 2,
        queue_bound: 8,
        conn_limit: CONN_LIMIT,
        read_timeout: Duration::from_millis(400),
        max_frame: MAX_FRAME,
        analytic: false,
    };
    let store = ResultStore::open(&base.join("store")).expect("open store");
    let server = Arc::new(Server::new(config, store));
    let cancel = CancelToken::new();
    let listener = endpoint.listen().expect("listen");
    let serve_thread = {
        let srv = Arc::clone(&server);
        let token = cancel.clone();
        std::thread::spawn(move || serve(&srv, listener, &token))
    };
    assert!(
        client::wait_ready(&endpoint, Duration::from_secs(10)),
        "daemon never came up"
    );

    let canonical = request("table2");
    let expected = reference("table2");
    let mut clean = serde_json::to_string(&canonical).expect("encode request").into_bytes();
    clean.push(b'\n');

    // Directed corpus first: the shapes a random mutator finds rarely.
    let directed: Vec<Vec<u8>> = vec![
        Vec::new(),                                   // connect-and-leave
        b"\n".to_vec(),                               // empty frame
        b"\n\n\n\n".to_vec(),                         // empty frame train
        b"{}\n".to_vec(),                             // valid JSON, no target
        b"{\"target\":\"dump\"}\n".to_vec(),          // unservable target
        b"not json at all\n".to_vec(),                // plain garbage
        vec![0xff, 0xfe, 0x80, b'\n'],                // non-UTF-8 frame
        {
            let mut two = clean.clone();              // interleaved frames
            two.extend_from_slice(&clean);
            two
        }
        ,
        // Oversize with no terminator: a complete over-long *line* is
        // merely malformed; the oversize refusal guards the unbounded
        // *accumulation* of a frame that never ends.
        vec![b'{'; MAX_FRAME + 64],
        clean[..clean.len() - 1].to_vec(),            // torn request (no newline)
    ];
    for (i, frame) in directed.iter().enumerate() {
        let reply = exchange_raw(&socket, frame);
        assert_replies_structured(&reply, frame, &canonical, &expected, 10_000 + i as u64);
    }

    for i in 0..FUZZ_MUTATIONS {
        let mut rng = SmallRng::seed_from_u64(0xF02D_0000 + i);
        let mut frame = clean.clone();
        mutate(&mut frame, &mut rng);
        let reply = exchange_raw(&socket, &frame);
        assert_replies_structured(&reply, &frame, &canonical, &expected, i);
    }

    // Slot-leak regression: every admission slot must still be free.
    // Hold `conn_limit` live queries open at once; if any fuzz
    // connection leaked its ConnSlot, at least one of these gets a
    // busy rejection instead of an answer.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONN_LIMIT)
            .map(|_| {
                let endpoint = &endpoint;
                scope.spawn(move || {
                    client::query(endpoint, &request(STATS_TARGET), Some(Duration::from_secs(30)))
                        .expect("stats query on a post-fuzz daemon")
                })
            })
            .collect();
        for h in handles {
            match h.join().expect("stats thread") {
                ServiceResponse::Stats(_) => {}
                other => panic!("slot leak: expected stats on a fresh slot, got {other:?}"),
            }
        }
    });

    // The daemon is not just alive — it still answers byte-exact.
    match client::query(&endpoint, &canonical, Some(Duration::from_secs(120)))
        .expect("post-fuzz canonical query")
    {
        ServiceResponse::Ok { stdout, .. } => assert_eq!(stdout, expected),
        other => panic!("post-fuzz canonical query must succeed, got {other:?}"),
    }

    // Drive the two remaining wire counters. A half-sent frame held
    // past the read timeout is a slow-loris: `net-timeouts` must move
    // (an idle keepalive connection deliberately does not count).
    {
        let mut s = UnixStream::connect(&socket).expect("daemon socket");
        s.write_all(b"{\"target\":").expect("half a frame");
        std::thread::sleep(Duration::from_millis(700)); // > read_timeout
        drop(s);
    }
    // A reply severed mid-write (client vanished) must not fail the
    // job — only `reply-aborted` moves, and the same request answers
    // byte-exact right afterwards.
    {
        let plan = membw_serve::netfault::NetFaultPlan::parse("tornframe@1").expect("plan");
        membw_serve::netfault::set_plan(Some(plan));
        let torn = exchange_raw(&socket, &clean);
        membw_serve::netfault::set_plan(None);
        assert!(
            !torn.ends_with(b"\n"),
            "tornframe@1 must leave an unterminated reply frame"
        );
        match client::query(&endpoint, &canonical, Some(Duration::from_secs(120)))
            .expect("query after a torn reply")
        {
            ServiceResponse::Ok { stdout, .. } => assert_eq!(
                stdout, expected,
                "a torn delivery must not poison the job or the store"
            ),
            other => panic!("expected ok after a torn delivery, got {other:?}"),
        }
    }

    // The rejections were counted, on the wire, in the stats reply.
    let stats = match client::query(&endpoint, &request(STATS_TARGET), Some(Duration::from_secs(30)))
        .expect("stats query")
    {
        ServiceResponse::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(
        stats.malformed_rejected > 0,
        "the corpus contains garbage frames; malformed-rejected must move"
    );
    assert!(
        stats.oversize_rejected > 0,
        "the corpus contains oversize frames; oversize-rejected must move"
    );
    assert!(
        stats.net_timeouts > 0,
        "a half-sent frame outlived the read timeout; net-timeouts must move"
    );
    assert!(
        stats.reply_aborted > 0,
        "a reply was severed mid-write; reply-aborted must move"
    );

    cancel.cancel(CancelReason::Interrupted);
    serve_thread.join().expect("serve thread").expect("serve loop");
    assert_eq!(
        PANICS.load(Ordering::SeqCst),
        0,
        "a fuzzed frame made something in the daemon panic"
    );
    let _ = std::fs::remove_dir_all(&base);
}
