//! The run engine's determinism guarantee, end to end: every
//! experiment produces identical results — same tables, same JSON,
//! same traffic counters — whether its job matrix runs serially or on
//! eight threads.
//!
//! This is the contract that lets `repro --jobs N` exist at all: job
//! results merge by canonical matrix index, never by completion order,
//! and each job regenerates its trace from the workload's fixed seed.

use membw::runner::with_jobs;
use membw::sim::Experiment;
use membw::workloads::{Scale, Suite};
use membw::{run_ablation, run_fig3, run_fig4, run_table7, run_table8, run_table9};

#[test]
fn fig3_decomposition_identical_across_jobs() {
    let serial = with_jobs(1, || {
        run_fig3::run_suite(Suite::Spec92, Scale::Test, &Experiment::ALL)
            .expect("no faults injected")
    });
    let parallel = with_jobs(8, || {
        run_fig3::run_suite(Suite::Spec92, Scale::Test, &Experiment::ALL)
            .expect("no faults injected")
    });
    // Byte-identical rendered table and JSON: the strongest form of the
    // guarantee (covers ordering, all counters, and float formatting).
    assert_eq!(
        run_fig3::render(&serial, "Figure 3").render(),
        run_fig3::render(&parallel, "Figure 3").render()
    );
    assert_eq!(
        serde_json::to_string_pretty(&serial).unwrap(),
        serde_json::to_string_pretty(&parallel).unwrap()
    );
}

#[test]
fn table7_and_table8_identical_across_jobs() {
    let (t7_serial, t7_tab_serial) = with_jobs(1, || {
        run_table7::run(Scale::Test).expect("no faults injected")
    });
    let (t7_parallel, t7_tab_parallel) = with_jobs(8, || {
        run_table7::run(Scale::Test).expect("no faults injected")
    });
    assert_eq!(t7_tab_serial.render(), t7_tab_parallel.render());
    assert_eq!(
        serde_json::to_string_pretty(&t7_serial).unwrap(),
        serde_json::to_string_pretty(&t7_parallel).unwrap()
    );

    let (t8_serial, t8_tab_serial) = with_jobs(1, || {
        run_table8::run(Scale::Test).expect("no faults injected")
    });
    let (t8_parallel, t8_tab_parallel) = with_jobs(8, || {
        run_table8::run(Scale::Test).expect("no faults injected")
    });
    assert_eq!(t8_tab_serial.render(), t8_tab_parallel.render());
    assert_eq!(
        serde_json::to_string_pretty(&t8_serial).unwrap(),
        serde_json::to_string_pretty(&t8_parallel).unwrap()
    );
}

#[test]
fn fig4_mtc_traffic_counts_identical_across_jobs() {
    let (serial, _) = with_jobs(1, || {
        run_fig4::run(Scale::Test).expect("no faults injected")
    });
    let (parallel, _) = with_jobs(8, || {
        run_fig4::run(Scale::Test).expect("no faults injected")
    });
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name);
        for (cs, cp) in s.curves.iter().zip(&p.curves) {
            assert_eq!(
                cs.label, cp.label,
                "{}: curve order must be canonical",
                s.name
            );
            // Exact u64 traffic counts, point by point — the MTC curves
            // exercise the heap min cache inside parallel jobs.
            assert_eq!(cs.points, cp.points, "{}/{}", s.name, cs.label);
        }
    }
}

#[test]
fn table9_factor_gaps_identical_across_jobs() {
    let (serial, _) = with_jobs(1, || {
        run_table9::run(Scale::Test).expect("no faults injected")
    });
    let (parallel, _) = with_jobs(8, || {
        run_table9::run(Scale::Test).expect("no faults injected")
    });
    assert_eq!(
        serde_json::to_string_pretty(&serial).unwrap(),
        serde_json::to_string_pretty(&parallel).unwrap()
    );
}

#[test]
fn ablation_identical_across_jobs() {
    let (serial, tab_serial) = with_jobs(1, || {
        run_ablation::run(Scale::Test, 8 * 1024).expect("no faults injected")
    });
    let (parallel, tab_parallel) = with_jobs(8, || {
        run_ablation::run(Scale::Test, 8 * 1024).expect("no faults injected")
    });
    assert_eq!(tab_serial.render(), tab_parallel.render());
    assert_eq!(
        serde_json::to_string_pretty(&serial).unwrap(),
        serde_json::to_string_pretty(&parallel).unwrap()
    );
}
