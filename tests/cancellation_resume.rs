//! Cancellation, deadlines, and the memory governor end to end at the
//! library level: a run cancelled mid-batch leaves a durable checkpoint
//! and, resumed, renders byte-identically to an uninterrupted run at
//! any `--jobs` setting; a deadline cancels with its own reason; a
//! zero memory budget degrades the run without changing a byte of
//! output.

use membw::runner::{
    with_cancel_token, with_checkpoint, with_governor, with_jobs, CancelToken, CheckpointConfig,
    Governor, FAULT_CANCEL_ENV,
};
use membw::workloads::Scale;
use membw::{run_table7, run_table8};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// `MEMBW_FAULT_*` are process-global; tests that set them must not
/// overlap.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Set an env var for the guard's lifetime.
struct EnvGuard(&'static str);

impl EnvGuard {
    fn set(key: &'static str, value: &str) -> Self {
        std::env::set_var(key, value);
        EnvGuard(key)
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        std::env::remove_var(self.0);
    }
}

/// A unique throwaway checkpoint root, removed on drop.
struct TempCheckpoint(PathBuf);

impl TempCheckpoint {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "membw-cancel-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        TempCheckpoint(dir)
    }

    fn config(&self, resume: bool) -> Option<CheckpointConfig> {
        Some(CheckpointConfig {
            root: self.0.clone(),
            resume,
        })
    }
}

impl Drop for TempCheckpoint {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn cancelled_run_resumes_byte_identically_at_any_jobs_setting() {
    let _lock = ENV_LOCK.lock().unwrap();
    let (_, clean_table) =
        with_jobs(1, || run_table7::run(Scale::Test)).expect("clean run succeeds");
    let clean = clean_table.render();

    for jobs in [1, 8] {
        let ckpt = TempCheckpoint::new("resume");

        // Phase 1: the injected cancel fires when job table7:1
        // dispatches; the batch drains, completed jobs land in the
        // checkpoint, and the failure table names the cancellation.
        {
            let _env = EnvGuard::set(FAULT_CANCEL_ENV, "table7:1");
            let token = CancelToken::new();
            let err = with_cancel_token(token.clone(), || {
                with_checkpoint(ckpt.config(false), || {
                    with_jobs(jobs, || run_table7::run(Scale::Test))
                })
            })
            .expect_err("the cancelled batch must surface an error");
            assert!(token.is_cancelled(), "the injected cancel tripped");
            let failures = err.failed_jobs();
            assert!(!failures.is_empty(), "at least the injected job drains");
            assert!(
                failures.iter().any(|f| f.error.contains("cancelled")),
                "failures name the cancellation: {failures:?}"
            );
            assert!(
                failures.iter().all(|f| f.attempts <= 1),
                "cancelled jobs are never retried: {failures:?}"
            );
        }

        // Phase 2: resume under a fresh (live) token. Checkpointed jobs
        // replay, drained jobs recompute, and stdout is byte-identical
        // to the run that was never interrupted.
        let (_, resumed) = with_checkpoint(ckpt.config(true), || {
            with_jobs(jobs, || run_table7::run(Scale::Test))
        })
        .expect("the resumed run completes");
        assert_eq!(
            resumed.render(),
            clean,
            "resumed output must be byte-identical at jobs={jobs}"
        );
    }
}

#[test]
fn deadline_cancels_with_its_own_reason_and_rerun_is_identical() {
    let _lock = ENV_LOCK.lock().unwrap();
    let (_, clean_table) =
        with_jobs(1, || run_table8::run(Scale::Test)).expect("clean run succeeds");
    let clean = clean_table.render();

    // An already-expired deadline cancels every job before dispatch.
    let token = CancelToken::new();
    token.set_deadline(Duration::from_nanos(1));
    std::thread::sleep(Duration::from_millis(2));
    let err = with_cancel_token(token.clone(), || {
        with_jobs(4, || run_table8::run(Scale::Test))
    })
    .expect_err("the expired deadline must cancel the batch");
    assert!(token.is_cancelled());
    let failures = err.failed_jobs();
    assert!(!failures.is_empty());
    assert!(
        failures
            .iter()
            .all(|f| f.error.contains("deadline exceeded")),
        "deadline cancellations carry their reason: {failures:?}"
    );
    assert!(
        failures.iter().all(|f| f.attempts == 0),
        "jobs cancelled before dispatch report zero attempts: {failures:?}"
    );

    // Outside the expired token the same target runs clean and
    // byte-identical.
    let (_, rerun) = with_jobs(4, || run_table8::run(Scale::Test)).expect("rerun completes");
    assert_eq!(rerun.render(), clean);
}

#[test]
fn zero_mem_budget_degrades_without_changing_output() {
    let _lock = ENV_LOCK.lock().unwrap();
    let (_, clean7) = with_jobs(1, || run_table7::run(Scale::Test)).expect("clean table7");
    let (_, clean8) = with_jobs(1, || run_table8::run(Scale::Test)).expect("clean table8");

    // The strictest possible budget: the governor must walk its ladder
    // (cache shrink -> record-streaming -> throttled admission) instead
    // of exceeding it, and the science must not notice.
    let gov = Arc::new(Governor::with_budget_mb(0));
    let (t7, t8) = with_governor(Arc::clone(&gov), || {
        let (_, t7) = with_jobs(8, || run_table7::run(Scale::Test)).expect("budgeted table7");
        let (_, t8) = with_jobs(8, || run_table8::run(Scale::Test)).expect("budgeted table8");
        (t7, t8)
    });
    assert_eq!(t7.render(), clean7.render(), "table7 byte-identical");
    assert_eq!(t8.render(), clean8.render(), "table8 byte-identical");

    let stats = gov.stats();
    assert_eq!(stats.budget_bytes, Some(0));
    assert_ne!(
        stats.level, "normal",
        "a zero budget forces degradation: {stats:?}"
    );
    assert!(
        stats.events >= 1,
        "escalations are recorded as loud events: {stats:?}"
    );
}
