//! Integration tests for the extension models, cross-checked against the
//! core simulators on real workload kernels.

use membw::cache::sector::{SectorCache, SectorConfig};
use membw::cache::{BypassCache, Cache, CacheConfig, StreamBuffers};
use membw::mtc::OptProfile;
use membw::trace::reuse::ReuseProfile;
use membw::trace::squash::Squashing;
use membw::trace::swprefetch::SoftwarePrefetch;
use membw::trace::{Interleave, Workload};
use membw::workloads::{Compress, Espresso, Li, Swm};

/// Belady never loses to LRU — checked on real kernels via the two
/// independent all-capacity profilers.
#[test]
fn opt_at_most_lru_on_real_kernels() {
    let kernels: Vec<Box<dyn Workload>> = vec![
        Box::new(Compress::new(15_000, 1 << 12, 3)),
        Box::new(Espresso::new(96, 8, 2, 3)),
        Box::new(Li::new(1024, 120, 3)),
    ];
    for k in &kernels {
        let refs = k.collect_mem_refs();
        let lru = ReuseProfile::measure(k, 32);
        let opt = OptProfile::measure(&refs, 32);
        assert_eq!(lru.cold_misses(), opt.cold_misses(), "{}", k.name());
        for cap in [16u64, 64, 256, 1024] {
            assert!(
                opt.misses(cap as usize) <= lru.lru_misses(cap),
                "{}: OPT beat by LRU at {cap} blocks",
                k.name()
            );
        }
    }
}

/// The sector cache interpolates between small- and large-block caches
/// in traffic on a real low-locality kernel.
#[test]
fn sector_cache_sits_between_block_sizes_on_compress() {
    let w = Compress::new(15_000, 1 << 12, 3);
    let refs = w.collect_mem_refs();
    let run_plain = |block: u64| {
        let mut c = Cache::new(CacheConfig::builder(16 * 1024, block).build().unwrap());
        for &r in &refs {
            c.access(r);
        }
        c.flush().traffic_below()
    };
    let t8 = run_plain(8);
    let t64 = run_plain(64);
    let mut sector = SectorCache::new(
        SectorConfig {
            size_bytes: 16 * 1024,
            block_size: 64,
            subblock_size: 8,
            ways: 1,
        }
        .validate()
        .unwrap(),
    );
    for &r in &refs {
        sector.access(r);
    }
    let ts = sector.flush().traffic_below();
    assert!(
        ts < t64,
        "sectoring must beat whole 64B fills: {ts} vs {t64}"
    );
    assert!(
        ts < t8 * 3,
        "sector traffic should be in the small-block regime: {ts} vs {t8}"
    );
}

/// Stream buffers help the streaming kernel and hurt the hashing kernel
/// (traffic-wise) — §2.1's two-sided coin.
#[test]
fn stream_buffers_are_workload_dependent() {
    let cfg = CacheConfig::builder(8 * 1024, 32).build().unwrap();
    // swm interleaves ~10 array streams per loop, so give the buffer
    // file enough entries to track them (Jouppi's 4 suffice only for
    // single-stream code).
    let measure = |w: &dyn Workload| {
        let mut sb = StreamBuffers::new(cfg, 12, 4);
        let mut plain = Cache::new(cfg);
        w.for_each_mem_ref(&mut |r| {
            sb.access(r);
            plain.access(r);
        });
        (
            sb.stream_hits(),
            sb.flush().traffic_below(),
            plain.flush().traffic_below(),
        )
    };
    let swm = Swm::new(48, 48, 1);
    let (hits, _sb_t, _plain_t) = measure(&swm);
    assert!(hits > 1000, "streaming kernel must hit the buffers: {hits}");
    let compress = Compress::new(10_000, 1 << 12, 3);
    let (_, sb_t, plain_t) = measure(&compress);
    assert!(
        sb_t > plain_t,
        "false streams must waste traffic on compress: {sb_t} vs {plain_t}"
    );
}

/// Bypassing reduces compress's traffic without hurting espresso's hits.
#[test]
fn bypass_is_selective() {
    let cfg = CacheConfig::builder(8 * 1024, 32).build().unwrap();
    let compress = Compress::new(10_000, 1 << 12, 3);
    let mut by = BypassCache::new(cfg, 512);
    let mut plain = Cache::new(cfg);
    compress.for_each_mem_ref(&mut |r| {
        by.access(r);
        plain.access(r);
    });
    assert!(by.flush().traffic_below() < plain.flush().traffic_below());

    let espresso = Espresso::new(96, 8, 2, 3);
    let mut by = BypassCache::new(cfg, 512);
    espresso.for_each_mem_ref(&mut |r| {
        by.access(r);
    });
    let s = by.flush();
    assert!(
        s.miss_ratio() < 0.2,
        "hot working set must stay cached: {}",
        s.miss_ratio()
    );
}

/// Squash + prefetch + interleave compose (they are all Workloads).
#[test]
fn trace_transformers_compose() {
    let base = Espresso::new(64, 8, 1, 3);
    let speculative = Squashing::new(base, 128, 64, 1);
    let prefetched = SoftwarePrefetch::new(speculative, 16);
    let threads = vec![prefetched];
    let il = Interleave::new(threads, 100, 1 << 30);
    let refs = il.collect_mem_refs();
    assert!(!refs.is_empty());
    // Determinism survives the whole stack.
    let base2 = Espresso::new(64, 8, 1, 3);
    let il2 = Interleave::new(
        vec![SoftwarePrefetch::new(Squashing::new(base2, 128, 64, 1), 16)],
        100,
        1 << 30,
    );
    assert_eq!(refs, il2.collect_mem_refs());
}
