//! Property tests for the fault-injecting I/O layer's two sharpest
//! recovery guarantees:
//!
//! * the orphaned-tmp sweep NEVER removes a temp file whose writing
//!   process is still alive, for any artifact name or PID shape — a
//!   sweep that raced a live writer would tear an in-flight atomic
//!   publish;
//! * a torn rename (old contents destroyed, new contents half-written)
//!   NEVER yields a servable entry — the seal check catches every
//!   half-visible prefix, for any payload.
//!
//! The torn-rename properties install a process-global fault plan
//! ([`faultio::set_plan`]), so this lives in its own test binary and
//! plan users serialize on one mutex.

use membw::runner::{faultio, persist};
use membw_serve::ResultStore;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes tests that install the process-global fault plan.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Distinct scratch dir per proptest case (cases run re-entrantly).
static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "membw_fprops_{tag}_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run `f` with `spec` installed as the process-global plan. The
/// caller must already hold [`PLAN_LOCK`] for its whole test body —
/// including any seeding I/O — so another case's plan can never tear
/// this case's setup writes.
fn with_plan<R>(spec: &str, f: impl FnOnce() -> R) -> R {
    faultio::set_plan(Some(faultio::FaultPlan::parse(spec).expect("spec parses")));
    let out = f();
    faultio::set_plan(None);
    out
}

/// Artifact-name strategy: realistic checkpoint/store shapes plus
/// adversarial ones (dots, embedded `.p`, digit runs).
fn name_strategy() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.p";
    prop::collection::vec(0usize..CHARS.len(), 1..12).prop_map(|idx| {
        let mut s: String = idx.iter().map(|&i| CHARS[i] as char).collect();
        s.push_str(".json");
        s
    })
}

/// Printable payload strategy (no regex support in the vendored shim).
fn payload_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 1..200)
        .prop_map(|v| String::from_utf8(v).expect("printable ASCII"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Liveness guard: a temp file carrying a live PID (ours) survives
    /// every sweep; the same name with a dead PID, and bare legacy
    /// `.tmp` names, are always claimed.
    #[test]
    fn sweep_never_claims_a_live_writers_tmp(name in name_strategy(), dead_pid in 400_000_000u32..=u32::MAX) {
        let dir = case_dir("sweep");
        let live = dir.join(format!("{name}.p{}.tmp", std::process::id()));
        let dead = dir.join(format!("{name}.x.p{dead_pid}.tmp"));
        let bare = dir.join(format!("{name}.tmp"));
        for p in [&live, &dead, &bare] {
            std::fs::write(p, b"in flight").unwrap();
        }
        let swept = persist::sweep_orphaned_tmp(&dir);
        prop_assert_eq!(swept, 2, "exactly the dead and bare tmps");
        prop_assert!(live.exists(), "live writer's tmp must survive the sweep");
        prop_assert!(!dead.exists(), "dead writer's tmp must be claimed");
        prop_assert!(!bare.exists(), "legacy bare tmp must be claimed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Torn rename vs. the seal: for any payload, a rename that leaves
    /// half the new bytes over the old entry must fail loudly, and the
    /// debris must never unseal.
    #[test]
    fn torn_rename_never_leaves_a_servable_artifact(payload in payload_strategy()) {
        let _guard = PLAN_LOCK.lock().unwrap();
        let dir = case_dir("torn");
        let fin = dir.join("artifact.json");
        let old = persist::seal("{\"v\": \"old\"}");
        persist::write_atomic(&fin, old.as_bytes()).expect("seed");
        let new = persist::seal(&format!("{{\"v\": {payload:?}}}"));
        let err = with_plan("tornrename", || {
            persist::write_atomic(&fin, new.as_bytes())
        });
        prop_assert!(err.is_err(), "a torn publish must be reported");
        let debris = std::fs::read_to_string(&fin).unwrap();
        if debris != old {
            // The old entry was destroyed mid-swap: the remains must
            // fail verification, so no reader ever serves them.
            prop_assert!(
                persist::unseal(&debris).is_none(),
                "half-visible artifact must never unseal: {debris:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// End to end through the serve store: after a torn overwrite, a
    /// load either quarantines (miss) or returns the OLD payload —
    /// never any prefix of the new one.
    #[test]
    fn store_never_serves_a_half_visible_entry(payload in payload_strategy()) {
        let _guard = PLAN_LOCK.lock().unwrap();
        let dir = case_dir("store");
        let store = ResultStore::open(&dir).expect("open");
        store.save("key", "old payload\n").expect("seed");
        let err = with_plan("tornrename", || store.save("key", &payload));
        prop_assert!(err.is_err(), "the torn save must be reported");
        match store.load("key") {
            None => {} // quarantined: the recompute path replaces it
            Some(served) => prop_assert_eq!(
                served,
                "old payload\n".to_string(),
                "only the old sealed payload may ever be served"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
