//! Integration tests for the §3 execution-time decomposition across
//! cores, experiments, and workload shapes.

use membw::sim::{decompose, Experiment, MachineSpec};
use membw::trace::pattern::{PointerChase, Strided, Zipf};
use membw::trace::Workload;
use membw::workloads::{Compress, Espresso, Swm};
use membw::Auditor;

fn check_invariants(w: &dyn Workload, spec: &MachineSpec) -> membw::sim::Decomposition {
    let d = decompose(w, spec);
    // The §3 identities are the runtime auditor's checks, run strict so
    // test-time and run-time invariants cannot drift apart.
    let mut audit = Auditor::strict("decomposition_invariants");
    audit.decomposition("test cell", &d);
    audit.finish().expect("Eq. 1-4 hold");
    // Beyond the shared checks: IPC cannot exceed the issue width.
    assert!(d.ipc() > 0.0 && d.ipc() <= f64::from(spec.issue_width));
    d
}

#[test]
fn invariants_hold_for_every_experiment_and_suite_config() {
    let w = Zipf::new(0, 16384, 16, 30_000, 0.8, 5).with_write_fraction(0.25);
    for e in Experiment::ALL {
        check_invariants(&w, &MachineSpec::spec92(e));
        check_invariants(&w, &MachineSpec::spec95(e));
    }
}

#[test]
fn perfect_fit_workload_is_compute_bound_everywhere() {
    let w = Espresso::new(96, 8, 6, 3); // ~3 KiB working set
    for e in Experiment::ALL {
        let d = check_invariants(&w, &MachineSpec::spec92(e));
        assert!(
            d.f_p > 0.8,
            "espresso must be compute-bound on {e:?}: f_p = {}",
            d.f_p
        );
    }
}

#[test]
fn streaming_is_memory_bound_and_ooo_shifts_stalls_to_bandwidth() {
    // A long unit-stride streaming read with writes: classic swm shape.
    let w = Strided::reads(0, 4, 400_000).with_write_every(4);
    let a = check_invariants(&w, &MachineSpec::spec92(Experiment::A));
    let f = check_invariants(&w, &MachineSpec::spec92(Experiment::F));
    assert!(a.f_p < 0.9, "streaming must stall the in-order machine");
    assert!(
        f.f_b >= a.f_b,
        "aggressive machine shifts stalls toward bandwidth: {} vs {}",
        f.f_b,
        a.f_b
    );
}

#[test]
fn pointer_chasing_is_latency_bound_not_bandwidth_bound() {
    // Dependent loads with a working set beyond L2: nothing overlaps, so
    // latency dominates even on experiment F.
    let chase = PointerChase::new(0, 1 << 16, 64, 200_000, 9); // 4 MiB
    let f = check_invariants(&chase, &MachineSpec::spec92(Experiment::F));
    assert!(
        f.f_l + f.f_b > 0.2,
        "a 4 MiB chase must stall: f_l={} f_b={}",
        f.f_l,
        f.f_b
    );
}

#[test]
fn block_doubling_changes_the_latency_bandwidth_split() {
    // Experiment B doubles both block sizes relative to A. For a
    // unit-stride streaming code, larger blocks reduce miss count
    // (latency) but haul more bytes per miss.
    let w = Swm::new(64, 64, 2);
    let a = decompose(&w, &MachineSpec::spec92(Experiment::A));
    let b = decompose(&w, &MachineSpec::spec92(Experiment::B));
    assert!(
        b.f_l <= a.f_l + 0.05,
        "spatial workload: bigger blocks shouldn't raise latency stalls much ({} vs {})",
        b.f_l,
        a.f_l
    );
}

#[test]
fn compress_f_has_substantial_bandwidth_stalls() {
    // The paper's flagship case: compress on the aggressive machine.
    let w = Compress::new(120_000, 1 << 16, 2); // 512 KiB table > L1
    let a = decompose(&w, &MachineSpec::spec92(Experiment::A));
    let f = decompose(&w, &MachineSpec::spec92(Experiment::F));
    assert!(
        f.f_b > 0.01,
        "experiment F must show bandwidth stalls, got {}",
        f.f_b
    );
    assert!(
        f.f_b >= a.f_b,
        "bandwidth share must not shrink from A to F: {} vs {}",
        f.f_b,
        a.f_b
    );
}

#[test]
fn uops_identical_across_memory_models() {
    // The same trace drives all three runs — uop counts must agree.
    let w = Zipf::new(0, 1024, 8, 5_000, 0.5, 1);
    let d = decompose(&w, &MachineSpec::spec92(Experiment::D));
    let d2 = decompose(&w, &MachineSpec::spec92(Experiment::D));
    assert_eq!(d.uops, d2.uops, "decomposition must be deterministic");
    assert_eq!(d.t, d2.t);
    assert_eq!(d.t_i, d2.t_i);
}
