//! End-to-end result integrity: a flipped byte in an on-disk checkpoint
//! or an in-memory trace arena must be quarantined/discarded and
//! recomputed, with the final output byte-identical to a cold run —
//! at `--jobs 1` and `--jobs 8` alike.

use membw::run_table8;
use membw::runner::{self, CheckpointConfig};
use membw::trace::replay::TraceCache;
use membw::workloads::{suite92, Scale};
use std::fs;
use std::path::{Path, PathBuf};

/// Render table8's full output (JSON archive + stdout table) under the
/// given thread count and checkpoint root.
fn table8_output(jobs: usize, ckpt: Option<CheckpointConfig>) -> (String, String) {
    runner::with_jobs(jobs, || {
        runner::with_checkpoint(ckpt, || {
            let (res, table) = run_table8::run(Scale::Test).expect("healthy run");
            (
                serde_json::to_string_pretty(&res).expect("serializes"),
                table.render(),
            )
        })
    })
}

/// Every archived job result under a checkpoint root (`<i>.json`,
/// excluding `meta.json`), sorted for determinism.
fn checkpoint_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(dirs) = fs::read_dir(root) else {
        return out;
    };
    for d in dirs.flatten() {
        let Ok(files) = fs::read_dir(d.path()) else {
            continue;
        };
        for f in files.flatten() {
            let p = f.path();
            if p.extension().is_some_and(|e| e == "json")
                && p.file_name().is_some_and(|n| n != "meta.json")
            {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn flipped_checkpoint_byte_is_quarantined_and_output_identical() {
    for jobs in [1usize, 8] {
        let root = std::env::temp_dir().join(format!(
            "membw_integrity_ckpt_{jobs}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        let cfg = Some(CheckpointConfig {
            root: root.clone(),
            resume: true,
        });

        let cold = table8_output(jobs, cfg.clone());
        let files = checkpoint_files(&root);
        assert!(!files.is_empty(), "cold run must archive job results");

        // Flip one byte inside the sealed JSON body: still plausible
        // text, wrong content — only the checksum can catch it.
        let victim = &files[0];
        let mut bytes = fs::read(victim).expect("read artifact");
        let pos = bytes.len() - 3;
        bytes[pos] ^= 0x04;
        fs::write(victim, &bytes).expect("write corrupted artifact");

        let quarantined_before = runner::quarantined_artifacts();
        let resumed = table8_output(jobs, cfg);
        assert_eq!(
            resumed, cold,
            "--jobs {jobs}: resumed output must be byte-identical to the cold run"
        );
        assert!(
            runner::quarantined_artifacts() > quarantined_before,
            "the corrupt artifact must be quarantined, not silently served"
        );
        let mut corrupt = victim.clone().into_os_string();
        corrupt.push(".corrupt");
        assert!(
            PathBuf::from(corrupt).exists(),
            "quarantined artifact preserved next to the original"
        );

        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn corrupted_cached_trace_arena_self_heals_with_identical_output() {
    let name = suite92(Scale::Test)[0].name().to_string();
    let cache = TraceCache::global();
    assert!(!cache.is_disabled(), "test needs the trace cache enabled");

    // Cold run: populates the global trace cache.
    let cold = table8_output(1, None);

    for (jobs, bit) in [(1usize, 12_345u64), (8, 987_654_321)] {
        let failures_before = cache.stats().verify_failures;
        assert!(
            cache.corrupt_cached_trace(&name, "Test", bit),
            "{name}/Test must be resident after the cold run"
        );
        let healed = table8_output(jobs, None);
        assert_eq!(
            healed, cold,
            "--jobs {jobs}: a corrupted arena must be re-recorded, never replayed"
        );
        assert!(
            cache.stats().verify_failures > failures_before,
            "the verification failure must be counted"
        );
    }
}
