//! Crash-point recovery proof: hard-abort at *every* enumerated I/O
//! point of a checkpointed run, restart, and prove nothing durable was
//! lost and nothing torn is ever served.
//!
//! The fault-injecting I/O layer (`membw_runner::faultio`) numbers
//! every durable-write step — create, write, fsync, rename, directory
//! fsync — process-wide. `MEMBW_IO_FAULT=count:PATH` enumerates them;
//! `crash@K` calls `abort()` immediately before point K, which is the
//! strongest crash model short of pulling power: no destructors, no
//! flushes, no unwinding.
//!
//! The harness re-runs this test binary as a subprocess (the `child_*`
//! tests below, which no-op unless their driver env vars are set) so
//! each crash kills a real process and recovery starts from a real
//! restart. Invariants checked after every crash point K:
//!
//! * every published checkpoint artifact still unseals (atomic rename
//!   means torn bytes can only live in `*.tmp`, never in `*.json`);
//! * a `--resume` rerun completes and its rendered output + JSON are
//!   byte-identical to an undisturbed run — at `--jobs 1` and 8;
//! * orphaned `*.tmp` files from the dead process are swept on reopen;
//! * the serve result store never loses a previously sealed entry and
//!   never serves a half-visible one.

use membw_core::run_fig3;
use membw_core::runner::{self, persist, CheckpointConfig};
use membw_core::sim::Experiment;
use membw_core::workloads::{Scale, Suite};
use membw_serve::ResultStore;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Driver env vars for the subprocess children. Unset → the child
/// tests pass as no-ops in a normal `cargo test` run.
const FIG3_DIR_ENV: &str = "MEMBW_CRASH_FIG3_DIR";
const STORE_DIR_ENV: &str = "MEMBW_CRASH_STORE_DIR";
const JOBS_ENV: &str = "MEMBW_CRASH_JOBS";
const RESUME_ENV: &str = "MEMBW_CRASH_RESUME";

const IO_FAULT_ENV: &str = membw_core::runner::faultio::IO_FAULT_ENV;

fn base_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("membw_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The workload under crash test: a real checkpointed fig3 run, small
/// enough (two experiments, test scale) that exploring every I/O point
/// stays fast, large enough to exercise meta writes, many artifacts,
/// and multi-job interleavings.
fn child_fig3_body(dir: &Path, jobs: usize, resume: bool) {
    runner::set_jobs(jobs);
    runner::set_checkpoint(Some(CheckpointConfig {
        root: dir.join("ckpt"),
        resume,
    }));
    let result = run_fig3::run_suite(Suite::Spec92, Scale::Test, &[Experiment::A, Experiment::F])
        .expect("fig3 suite");
    let table = run_fig3::render(&result, "crash probe").render();
    let json = serde_json::to_string(&result).expect("result serializes");
    // Deliberately plain fs: the probe output is scratch, not a durable
    // artifact, so it must not perturb the enumerated I/O points.
    std::fs::write(dir.join("out.txt"), format!("{table}\n{json}\n")).unwrap();
}

/// Subprocess entry: a checkpointed fig3 run driven by env vars.
#[test]
fn child_fig3() {
    let Ok(dir) = std::env::var(FIG3_DIR_ENV) else {
        return;
    };
    let jobs: usize = std::env::var(JOBS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let resume = std::env::var(RESUME_ENV).is_ok_and(|v| v == "1");
    child_fig3_body(Path::new(&dir), jobs, resume);
}

/// Subprocess entry: a serve result-store round-trip driven by env
/// vars. `k-alpha` overwrites a pre-seeded entry; `k-beta` is new.
#[test]
fn child_store() {
    let Ok(dir) = std::env::var(STORE_DIR_ENV) else {
        return;
    };
    let store = ResultStore::open(Path::new(&dir)).expect("open store");
    store.save("k-alpha", "alpha v2\n").expect("save k-alpha");
    store.save("k-beta", "beta payload\n").expect("save k-beta");
}

/// Run one child test in a subprocess with the given env, returning
/// its exit status and captured stderr.
fn run_child(test_name: &str, envs: &[(&str, String)]) -> (std::process::ExitStatus, String) {
    let exe = std::env::current_exe().expect("own test binary");
    let mut cmd = Command::new(exe);
    // --nocapture: libtest's output capture would swallow the abort
    // announcement (the buffer dies with the process).
    cmd.args([
        test_name,
        "--exact",
        "--test-threads=1",
        "--quiet",
        "--nocapture",
    ]);
    // A clean slate: nothing from the outer environment may leak a
    // fault plan or driver var into the child.
    for var in [
        FIG3_DIR_ENV,
        STORE_DIR_ENV,
        JOBS_ENV,
        RESUME_ENV,
        IO_FAULT_ENV,
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn child");
    (
        out.status,
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn assert_clean_exit(test_name: &str, status: std::process::ExitStatus, stderr: &str) {
    assert!(
        status.success(),
        "{test_name} child failed ({status:?}):\n{stderr}"
    );
}

/// True when the child died at the injected abort (SIGABRT), false on
/// a clean exit. Anything else fails the test.
fn crashed_at_injection(status: std::process::ExitStatus, stderr: &str) -> bool {
    use std::os::unix::process::ExitStatusExt;
    if status.success() {
        return false;
    }
    assert_eq!(
        status.signal(),
        Some(libc_sigabrt()),
        "child must die at the injected abort, not otherwise ({status:?}):\n{stderr}"
    );
    assert!(
        stderr.contains("faultio: injected crash at I/O point"),
        "abort must announce its point:\n{stderr}"
    );
    true
}

/// SIGABRT's number, without a libc dependency.
fn libc_sigabrt() -> i32 {
    6
}

/// Every published artifact in a checkpoint tree must unseal; torn
/// bytes may only ever live in `*.tmp` files.
fn assert_tree_publishable(root: &Path) {
    if !root.exists() {
        return; // crashed before the first mkdir: nothing published
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for e in std::fs::read_dir(&dir).unwrap() {
            let e = e.unwrap();
            let path = e.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let name = e.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") || name.contains(".corrupt") {
                continue; // inspectable debris, never served
            }
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|err| panic!("unreadable artifact {}: {err}", path.display()));
            if name == "meta.json" {
                // Meta is raw JSON compared byte-for-byte on reopen; a
                // torn meta would poison identity checks.
                serde_json::from_str::<serde::json::Value>(&text)
                    .unwrap_or_else(|err| panic!("torn meta {}: {err}", path.display()));
            } else if name.ends_with(".json") {
                assert!(
                    persist::unseal(&text).is_some(),
                    "published artifact {} fails its seal after a crash",
                    path.display()
                );
            }
        }
    }
}

fn assert_no_tmp(root: &Path) {
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for e in std::fs::read_dir(&dir).unwrap() {
            let e = e.unwrap();
            let path = e.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let name = e.file_name().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "orphaned tmp survived the resumed run: {}",
                path.display()
            );
        }
    }
}

/// Count the child workload's I/O points by running it once in
/// enumeration mode.
fn count_points(test_name: &str, dir_env: &str, dir: &Path) -> u64 {
    let count_file = dir.join("points.count");
    let (status, stderr) = run_child(
        test_name,
        &[
            (dir_env, dir.join("work").display().to_string()),
            (JOBS_ENV, "1".to_string()),
            (IO_FAULT_ENV, format!("count:{}", count_file.display())),
        ],
    );
    assert_clean_exit(test_name, status, &stderr);
    let text = std::fs::read_to_string(&count_file).expect("count file written");
    text.split_whitespace()
        .next()
        .and_then(|t| t.parse().ok())
        .expect("count file records the last point number")
}

#[test]
fn fig3_recovers_from_a_crash_at_every_io_point() {
    let base = base_dir("fig3");

    // --- Reference: undisturbed runs at jobs 1 and 8 are identical. --
    let ref_dir = base.join("ref1");
    std::fs::create_dir_all(&ref_dir).unwrap();
    let (status, stderr) = run_child(
        "child_fig3",
        &[
            (FIG3_DIR_ENV, ref_dir.display().to_string()),
            (JOBS_ENV, "1".to_string()),
        ],
    );
    assert_clean_exit("reference jobs=1", status, &stderr);
    let reference = std::fs::read(ref_dir.join("out.txt")).expect("reference output");

    let ref8_dir = base.join("ref8");
    std::fs::create_dir_all(&ref8_dir).unwrap();
    let (status, stderr) = run_child(
        "child_fig3",
        &[
            (FIG3_DIR_ENV, ref8_dir.display().to_string()),
            (JOBS_ENV, "8".to_string()),
        ],
    );
    assert_clean_exit("reference jobs=8", status, &stderr);
    assert_eq!(
        std::fs::read(ref8_dir.join("out.txt")).unwrap(),
        reference,
        "undisturbed output must be byte-identical at jobs 1 and 8"
    );

    // --- Enumerate the workload's I/O points. ------------------------
    let count_dir = base.join("count");
    std::fs::create_dir_all(&count_dir).unwrap();
    let total = count_points("child_fig3", FIG3_DIR_ENV, &count_dir);
    assert!(
        total >= 20,
        "a checkpointed fig3 run must enumerate a real I/O surface, got {total}"
    );

    // --- Crash at every point K, then prove recovery. ----------------
    // Parallel over worker threads: each K owns a private directory.
    // The resumed run alternates jobs 1 / jobs 8 so recovery identity
    // is proven at both ends of the parallelism range.
    let ks: Vec<u64> = (1..=total).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let failures = std::sync::Mutex::new(Vec::<String>::new());
    let workers = 8usize;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&k) = ks.get(i) else { break };
                let result = std::panic::catch_unwind(|| explore_crash_point(&base, k, &reference));
                if let Err(p) = result {
                    let msg = p
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic".to_string());
                    failures.lock().unwrap().push(format!("K={k}: {msg}"));
                }
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    assert!(
        failures.is_empty(),
        "{} of {total} crash points failed recovery:\n{}",
        failures.len(),
        failures.join("\n")
    );

    // Past the last point the plan never fires: a clean run again.
    let beyond_dir = base.join("beyond");
    std::fs::create_dir_all(&beyond_dir).unwrap();
    let (status, stderr) = run_child(
        "child_fig3",
        &[
            (FIG3_DIR_ENV, beyond_dir.display().to_string()),
            (JOBS_ENV, "1".to_string()),
            (IO_FAULT_ENV, format!("crash@{}", total + 1000)),
        ],
    );
    assert_clean_exit("crash beyond the last point", status, &stderr);
    assert_eq!(
        std::fs::read(beyond_dir.join("out.txt")).unwrap(),
        reference
    );

    let _ = std::fs::remove_dir_all(&base);
}

/// One crash point: abort at K, check the debris, resume, check the
/// bytes.
fn explore_crash_point(base: &Path, k: u64, reference: &[u8]) {
    let dir = base.join(format!("k{k}"));
    std::fs::create_dir_all(&dir).unwrap();
    let (status, stderr) = run_child(
        "child_fig3",
        &[
            (FIG3_DIR_ENV, dir.display().to_string()),
            (JOBS_ENV, "1".to_string()),
            (IO_FAULT_ENV, format!("crash@{k}")),
        ],
    );
    assert!(
        crashed_at_injection(status, &stderr),
        "K={k}: the plan must fire within the enumerated range"
    );
    // Debris rule: everything published is still sealed.
    assert_tree_publishable(&dir.join("ckpt"));
    // Restart with resume: completed work replays, the rest re-runs,
    // and the output is byte-identical to an undisturbed run.
    let resume_jobs = if k.is_multiple_of(2) { 8 } else { 1 };
    let (status, stderr) = run_child(
        "child_fig3",
        &[
            (FIG3_DIR_ENV, dir.display().to_string()),
            (JOBS_ENV, resume_jobs.to_string()),
            (RESUME_ENV, "1".to_string()),
        ],
    );
    assert_clean_exit("resume", status, &stderr);
    let out = std::fs::read(dir.join("out.txt")).unwrap();
    assert_eq!(
        out, reference,
        "K={k}: resumed output (jobs {resume_jobs}) diverged from the reference"
    );
    // The dead process's orphaned tmps were swept by the reopen.
    assert_no_tmp(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_store_survives_a_crash_at_every_io_point() {
    let base = base_dir("store");

    // Enumerate the store round-trip's I/O surface.
    let count_dir = base.join("count");
    std::fs::create_dir_all(&count_dir).unwrap();
    // Pre-seed k-alpha in the same dir the child will reuse, exactly
    // as the exploration runs do, so the count matches them.
    let work = count_dir.join("work");
    ResultStore::open(&work)
        .unwrap()
        .save("k-alpha", "alpha v1\n")
        .unwrap();
    let total = count_points("child_store", STORE_DIR_ENV, &count_dir);
    assert!(
        total >= 8,
        "two sealed saves must enumerate a real I/O surface, got {total}"
    );

    for k in 1..=total {
        let dir = base.join(format!("k{k}"));
        let store = ResultStore::open(&dir).expect("seed store");
        store.save("k-alpha", "alpha v1\n").expect("seed k-alpha");
        drop(store);
        let (status, stderr) = run_child(
            "child_store",
            &[
                (STORE_DIR_ENV, dir.display().to_string()),
                (IO_FAULT_ENV, format!("crash@{k}")),
            ],
        );
        assert!(
            crashed_at_injection(status, &stderr),
            "K={k}: the plan must fire within the enumerated range"
        );
        // Restart: the store must still serve every sealed entry and
        // never a torn one.
        let store = ResultStore::open(&dir).expect("reopen after crash");
        let alpha = store.load("k-alpha");
        assert!(
            alpha.as_deref() == Some("alpha v1\n") || alpha.as_deref() == Some("alpha v2\n"),
            "K={k}: a sealed entry was lost or torn: {alpha:?}"
        );
        let beta = store.load("k-beta");
        assert!(
            beta.is_none() || beta.as_deref() == Some("beta payload\n"),
            "K={k}: half-visible entry served: {beta:?}"
        );
        // No quarantine can have happened: atomic publication means a
        // crash leaves debris in `*.tmp`, never a torn `*.json`.
        for e in std::fs::read_dir(&dir).unwrap() {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            assert!(
                !name.contains(".corrupt"),
                "K={k}: crash debris was quarantined as corrupt: {name}"
            );
            assert!(
                !name.ends_with(".tmp"),
                "K={k}: reopen must sweep the dead process's tmp: {name}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}
