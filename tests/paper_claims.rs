//! End-to-end miniatures of each experiment, asserting the paper's
//! qualitative claims survive in this reproduction.

use membw::analytic::extrapolate::paper_projection;
use membw::analytic::pins::{dataset, fit_growth, Series};
use membw::sim::Experiment;
use membw::workloads::{Scale, Suite};
use membw::{run_fig3, run_fig4, run_table2, run_table7, run_table8, run_table9};

#[test]
fn fig1_pin_counts_grow_about_16_percent_per_year() {
    let rate = fit_growth(&dataset(), Series::Pins);
    assert!((0.10..0.22).contains(&rate), "rate = {rate}");
}

#[test]
fn table2_tmm_gains_sqrt_k_and_fft_gains_little() {
    let (rows, _) = run_table2::run(1024).expect("audit passes");
    let tmm = rows.iter().find(|r| r.name == "TMM").expect("TMM row");
    let fft = rows.iter().find(|r| r.name == "FFT").expect("FFT row");
    assert!(tmm.measured_gain > fft.measured_gain);
    assert!(
        (1.2..3.0).contains(&tmm.measured_gain),
        "{}",
        tmm.measured_gain
    );
}

#[test]
fn fig3_aggressive_machines_flip_latency_to_bandwidth() {
    // Table 6's claim, in miniature: averaged over the SPEC92 suite,
    // f_B grows from experiment A to F while f_L shrinks or holds.
    let r = run_fig3::run_suite(Suite::Spec92, Scale::Test, &[Experiment::A, Experiment::F])
        .expect("no faults injected");
    let rows = r.table6_rows();
    assert_eq!(rows.len(), 7);
    let fb_a = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
    let fb_f = rows.iter().map(|r| r.4).sum::<f64>() / rows.len() as f64;
    assert!(fb_f > fb_a, "mean f_B must grow: {fb_a:.1}% -> {fb_f:.1}%");
}

#[test]
fn table7_small_caches_can_out_traffic_no_cache() {
    let (res, _) = run_table7::run(Scale::Test).expect("no faults injected");
    let over_one = res
        .rows
        .iter()
        .flat_map(|r| r.ratios.iter())
        .filter(|(s, v)| *s <= 4096 && v.is_some_and(|x| x > 1.0))
        .count();
    assert!(
        over_one >= 3,
        "paper: more than half the benchmarks at 1-4KB"
    );
}

#[test]
fn table7_reasonable_caches_filter_about_half_the_traffic() {
    // The paper's mean over >=64KB cells is 0.51. At Test scale, few
    // benchmarks have footprints above 64 KiB, so the cells that survive
    // the `<<<` filter over-represent the table-probing codes; accept a
    // generous band here and record the Small-scale value (much closer
    // to the paper) in EXPERIMENTS.md.
    let (res, _) = run_table7::run(Scale::Test).expect("no faults injected");
    assert!(
        (0.2..3.0).contains(&res.mean_reasonable_ratio),
        "mean R = {}",
        res.mean_reasonable_ratio
    );
}

#[test]
fn table8_gap_spans_an_order_of_magnitude_or_more() {
    let (res, _) = run_table8::run(Scale::Test).expect("no faults injected");
    assert!(
        res.max_g >= 10.0,
        "max G = {} (paper: up to ~100)",
        res.max_g
    );
    // And G >= 1 everywhere it is defined.
    for row in &res.rows {
        for (size, g) in &row.inefficiencies {
            if let Some(g) = g {
                assert!(*g >= 0.99, "{} @ {size}: {g}", row.name);
            }
        }
    }
}

#[test]
fn fig4_block_size_ordering_follows_spatial_locality() {
    let (panels, _) = run_fig4::run(Scale::Test).expect("no faults injected");
    // compress: little spatial locality -> at a mid cache size, traffic
    // increases monotonically with block size.
    let compress = panels.iter().find(|p| p.name == "compress").expect("panel");
    let size = 16 * 1024u64;
    let t: Vec<u64> = ["4B blocks", "32B blocks", "128B blocks"]
        .iter()
        .map(|label| {
            compress
                .curves
                .iter()
                .find(|c| &c.label == label)
                .and_then(|c| c.points.iter().find(|(s, _)| *s == size))
                .map(|(_, t)| *t)
                .expect("point")
        })
        .collect();
    assert!(t[0] < t[1] && t[1] < t[2], "compress ordering: {t:?}");
    // swm at large caches shows spatial locality: 32B beats 4B (fewer,
    // fully-used blocks cost the same bytes; request overhead isn't
    // counted, so equality is allowed).
    let swm = panels.iter().find(|p| p.name == "swm").expect("panel");
    let at = |label: &str, s: u64| {
        swm.curves
            .iter()
            .find(|c| c.label == label)
            .and_then(|c| c.points.iter().find(|(cap, _)| *cap == s))
            .map(|(_, t)| *t)
            .expect("point")
    };
    let big = 1 << 20;
    assert!(
        at("32B blocks", big) <= at("4B blocks", big) * 2,
        "swm's streaming blocks are fully used"
    );
}

#[test]
fn table9_no_single_factor_dominates_everywhere() {
    let (res, _) = run_table9::run(Scale::Test).expect("no faults injected");
    // For each factor, find a benchmark where it is NOT the largest —
    // the paper: "the lack of any one factor that dominates the others,
    // across all benchmarks".
    let benchmarks: std::collections::BTreeSet<&str> =
        res.gaps.iter().map(|g| g.workload.as_str()).collect();
    let mut leaders = std::collections::BTreeSet::new();
    for b in benchmarks {
        let leader = res
            .gaps
            .iter()
            .filter(|g| g.workload == b)
            .max_by(|x, y| x.delta().partial_cmp(&y.delta()).expect("finite"))
            .expect("non-empty");
        leaders.insert(leader.factor.clone());
    }
    assert!(
        leaders.len() >= 2,
        "at least two different leading factors across benchmarks, got {leaders:?}"
    );
}

#[test]
fn section_4_3_projection_matches_the_paper() {
    let p = paper_projection();
    assert!((2000.0..3500.0).contains(&p.pins));
    assert!((20.0..30.0).contains(&p.per_pin_bandwidth_multiple));
}
