//! `membw` — a from-scratch Rust reproduction of Burger, Goodman and
//! Kägi, *Memory Bandwidth Limitations of Future Microprocessors*
//! (ISCA 1996).
//!
//! This facade crate re-exports the whole workspace; see the README for
//! the architecture and [`core`] (`membw-core`) for the per-table
//! experiment runners.
//!
//! # Quickstart
//!
//! ```
//! use membw::cache::{Cache, CacheConfig};
//! use membw::trace::{pattern::Strided, Workload};
//!
//! // How much traffic does a 64 KiB cache generate for a streaming
//! // workload with no spatial locality? (Table 7's question.)
//! let cfg = CacheConfig::builder(64 * 1024, 32).build()?;
//! let mut cache = Cache::new(cfg);
//! Strided::reads(0, 32, 100_000).for_each_mem_ref(&mut |r| {
//!     cache.access(r);
//! });
//! let stats = cache.flush();
//! assert!(stats.traffic_ratio().unwrap() > 1.0); // worse than no cache!
//! # Ok::<(), membw::cache::ConfigError>(())
//! ```

pub use membw_core::*;
