//! Flexible caches (§5.3): no single block size is right for every
//! program, so let software pick. This example sweeps the transfer size
//! per workload and shows the per-application optimum — the paper's
//! argument for programmable cache parameters.
//!
//! Run with: `cargo run --release --example flexible_cache`

use membw::cache::{Associativity, Cache, CacheConfig};
use membw::workloads::{suite92, Scale};

fn traffic(refs: &[membw::trace::MemRef], size: u64, block: u64) -> u64 {
    let cfg = CacheConfig::builder(size, block)
        .associativity(Associativity::Ways(4))
        .build()
        .expect("valid geometry");
    let mut c = Cache::new(cfg);
    for &r in refs {
        c.access(r);
    }
    c.flush().traffic_below()
}

fn main() {
    const BLOCKS: [u64; 6] = [4, 8, 16, 32, 64, 128];
    const CACHE: u64 = 16 * 1024;

    println!("16KB 4-way cache: total below-cache traffic (KB) per block size\n");
    print!("{:<10}", "workload");
    for b in BLOCKS {
        print!("{:>9}", format!("{b}B"));
    }
    println!("{:>10}", "best");
    println!("{}", "-".repeat(10 + 9 * BLOCKS.len() + 10));

    let mut best_blocks = Vec::new();
    for bench in suite92(Scale::Test) {
        let refs = bench.workload().collect_mem_refs();
        print!("{:<10}", bench.name());
        let mut best = (u64::MAX, 0u64);
        for b in BLOCKS {
            let t = traffic(&refs, CACHE, b);
            if t < best.0 {
                best = (t, b);
            }
            print!("{:>9}", t / 1024);
        }
        println!("{:>9}B", best.1);
        best_blocks.push((bench.name().to_string(), best.1));
    }

    let distinct: std::collections::HashSet<u64> = best_blocks.iter().map(|(_, b)| *b).collect();
    println!(
        "\n{} distinct optima across {} workloads — the case for\n\
         software-controlled transfer sizes (§5.3).",
        distinct.len(),
        best_blocks.len()
    );
}
