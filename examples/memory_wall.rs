//! The memory-wall demonstration: as latency tolerance gets more
//! aggressive (experiments A → F), stalls shift from raw latency to
//! bandwidth — the paper's central claim (Figure 3 / Table 6).
//!
//! Run with: `cargo run --release --example memory_wall [benchmark]`

use membw::sim::{decompose, Experiment, MachineSpec};
use membw::workloads::{suite92, Scale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "swm".to_string());
    let suite = suite92(Scale::Test);
    let bench = suite.iter().find(|b| b.name() == which).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark '{which}'; available: {}",
            suite
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    });

    println!("benchmark: {}\n", bench.name());
    println!("exp  core          cache        norm.time   f_P    f_L    f_B");
    println!("---------------------------------------------------------------");
    let mut base: Option<f64> = None;
    for e in Experiment::ALL {
        let spec = MachineSpec::spec92(e);
        let d = decompose(&bench.workload(), &spec);
        let seconds = d.t as f64 / spec.cpu_mhz as f64;
        let base_s = *base.get_or_insert(d.t_p as f64 / spec.cpu_mhz as f64);
        let core = match spec.core {
            membw::sim::CoreKind::InOrder => "in-order",
            membw::sim::CoreKind::OutOfOrder => "out-of-order",
        };
        let cache = if spec.mem.blocking {
            "blocking"
        } else {
            "lockup-free"
        };
        println!(
            "{:>3}  {:<12}  {:<11}  {:>8.2}  {:>5.2}  {:>5.2}  {:>5.2}{}",
            e.label(),
            core,
            cache,
            seconds / base_s,
            d.f_p,
            d.f_l,
            d.f_b,
            if spec.mem.tagged_prefetch {
                "  +prefetch"
            } else {
                ""
            },
        );
    }
    println!(
        "\nReading: on the aggressive machines (D-F) the bandwidth share f_B\n\
         grows and generally overtakes the raw-latency share f_L (Table 6)."
    );
}
