//! Pin-budget planning with effective pin bandwidth (Eqs. 5 & 7) and
//! the §4.3 trend projection: given a package, how much usable memory
//! bandwidth does the processor actually see, how much could better
//! on-chip management buy, and how long do the trends give you?
//!
//! Run with: `cargo run --release --example pin_budget`

use membw::analytic::extrapolate::project;
use membw::analytic::{effective_pin_bandwidth, upper_bound_epin};
use membw::cache::{Cache, CacheConfig};
use membw::mtc::{MinCache, MinConfig};
use membw::trace::Workload;
use membw::workloads::{Perl, Vortex};

fn measure(w: &dyn Workload, cache_bytes: u64) -> (f64, f64) {
    let refs = w.collect_mem_refs();
    let cfg = CacheConfig::builder(cache_bytes, 32)
        .build()
        .expect("valid geometry");
    let mut cache = Cache::new(cfg);
    for &r in &refs {
        cache.access(r);
    }
    let stats = cache.flush();
    let ratio = stats.traffic_ratio().expect("non-empty trace");
    let mtc = MinCache::simulate(&MinConfig::mtc(cache_bytes), &refs);
    let g = (stats.traffic_below() as f64 / mtc.traffic_below() as f64).max(1.0);
    (ratio, g)
}

fn main() {
    // A 1996-class package: ~600 pins, 800 MB/s peak.
    let b_pin = 800.0;
    println!("package: 800 MB/s peak pin bandwidth, 64KB on-chip cache\n");
    println!(
        "{:<10}{:>8}{:>8}{:>14}{:>14}",
        "workload", "R", "G", "E_pin MB/s", "OE_pin MB/s"
    );
    println!("{}", "-".repeat(54));
    let perl = Perl::new(4096, 1 << 15, 30_000, 1);
    let vortex = Vortex::new(4096, 8000, 1);
    for w in [&perl as &dyn Workload, &vortex] {
        let (r, g) = measure(w, 64 * 1024);
        let e = effective_pin_bandwidth(b_pin, &[r]);
        let oe = upper_bound_epin(b_pin, &[r], &[g]);
        println!("{:<10}{r:>8.2}{g:>8.1}{e:>14.0}{oe:>14.0}", w.name());
    }

    println!("\nTrend budget (16%/yr pins, 60%/yr performance):");
    for years in [2u32, 5, 10] {
        let p = project(600.0, 0.16, 0.60, years);
        println!(
            "  +{years:>2} years: {:>5.0} pins, {:>5.1}x performance -> {:>4.1}x more bandwidth needed per pin",
            p.pins, p.performance_multiple, p.per_pin_bandwidth_multiple
        );
    }
    println!(
        "\nThe gap must come from effective-bandwidth engineering (better\n\
         on-chip management, the OE_pin column) or from moving memory onto\n\
         the processor die (§6)."
    );
}
