//! The paper's endgame (§6, Figure 5): when off-chip accesses cost like
//! page faults, all system memory moves onto processor/memory modules.
//! This example locates the break-even locality for a unified module
//! against a conventional system as pin pressure grows.
//!
//! Run with: `cargo run --release --example future_system`

use membw::analytic::onchip::{ConventionalSystem, UnifiedModule};

fn main() {
    let conventional = ConventionalSystem {
        hit_ns: 2.0,
        offchip_ns: 90.0,
        pin_bw: 0.8, // 800 MB/s ≈ a 1996 package
        line_bytes: 32.0,
    };
    let module = UnifiedModule {
        hit_ns: 2.0,
        onchip_dram_ns: 25.0,
        remote_ns: 400.0,
        local_fraction: 0.9,
    };

    println!("conventional: 90ns off-chip, 800 MB/s pins, 32B lines");
    println!("unified module: 25ns on-chip DRAM, 400ns remote modules\n");

    println!("miss   pin     conventional   unified(90% local)   break-even");
    println!("ratio  load    avg ns         avg ns               locality");
    println!("{}", "-".repeat(66));
    for miss in [0.02, 0.05, 0.10] {
        for load in [0.0, 0.5, 0.9] {
            let c = conventional.avg_access_ns_at_load(miss, load);
            let u = module.avg_access_ns(miss);
            let be = module
                .break_even_locality(&conventional, miss, load)
                .map(|f| format!("{:.0}%", f * 100.0))
                .unwrap_or_else(|| "unreachable".to_string());
            println!("{miss:>5.2}  {load:>4.1}   {c:>10.1}      {u:>10.1}          {be:>10}");
        }
    }
    println!(
        "\nReading: as pin utilization rises, the locality a unified module\n\
         needs to win falls — the §6 argument that growing bandwidth\n\
         pressure eventually moves all memory on-die."
    );
}
