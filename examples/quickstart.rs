//! Quickstart: the paper's three instruments in thirty lines each —
//! traffic ratios (Eq. 4), the minimal-traffic cache bound (Eq. 6), and
//! the execution-time decomposition (Eqs. 1–3).
//!
//! Run with: `cargo run --release --example quickstart`

use membw::cache::{Cache, CacheConfig};
use membw::mtc::{MinCache, MinConfig};
use membw::sim::{decompose, Experiment, MachineSpec};
use membw::trace::Workload;
use membw::workloads::Compress;

fn main() {
    // A compress-like workload: LZW over a hash table, almost no
    // spatial locality.
    let workload = Compress::new(60_000, 1 << 14, 1);
    let refs = workload.collect_mem_refs();
    println!(
        "workload: {} ({} references)\n",
        workload.name(),
        refs.len()
    );

    // 1. Traffic ratio of a 16 KiB direct-mapped cache (Table 7's
    //    measurement). R > 1 means the cache moves MORE bytes than the
    //    processor asked for.
    let cfg = CacheConfig::builder(16 * 1024, 32)
        .build()
        .expect("valid geometry");
    let mut cache = Cache::new(cfg);
    for &r in &refs {
        cache.access(r);
    }
    let stats = cache.flush();
    let ratio = stats.traffic_ratio().expect("non-empty trace");
    println!("traffic ratio R of a 16KB/32B cache:   {ratio:.2}");

    // 2. The same capacity, optimally managed (Belady min, one-word
    //    blocks, bypass, write-validate): the minimal-traffic bound.
    let mtc = MinCache::simulate(&MinConfig::mtc(16 * 1024), &refs);
    let g = stats.traffic_below() as f64 / mtc.traffic_below() as f64;
    println!("traffic inefficiency G vs same-size MTC: {g:.1}x headroom");

    // 3. Where does the time go? Perfect-memory, latency-only, and full
    //    runs on the paper's most aggressive machine (experiment F).
    let spec = MachineSpec::spec92(Experiment::F);
    let d = decompose(&workload, &spec);
    println!(
        "\nexecution time on experiment F: {} cycles\n  processing f_P = {:.0}%\n  raw latency f_L = {:.0}%\n  bandwidth   f_B = {:.0}%",
        d.t,
        d.f_p * 100.0,
        d.f_l * 100.0,
        d.f_b * 100.0
    );
}
